"""Tests for Sample&Collide and the inverted-birthday baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import EstimatorError
from repro.core.sample_collide import InvertedBirthdayEstimator, SampleCollideEstimator
from repro.overlay.builders import heterogeneous_random
from repro.overlay.graph import OverlayGraph
from repro.sim.messages import MessageKind, MessageMeter


class TestEstimateBasics:
    def test_returns_positive_estimate(self, het_graph):
        est = SampleCollideEstimator(het_graph, l=50, rng=1).estimate()
        assert est.value > 0
        assert est.algorithm == "sample_collide"

    def test_accuracy_at_l200(self, het_graph):
        # Relative std at l=200 is ~7%; a single run must land well within
        # 4 sigma of the truth.
        est = SampleCollideEstimator(het_graph, l=200, rng=2).estimate()
        assert est.quality(het_graph.size) == pytest.approx(100, abs=30)

    def test_unbiased_over_repetitions(self, het_graph):
        vals = [
            SampleCollideEstimator(het_graph, l=100, rng=100 + s).estimate().value
            for s in range(25)
        ]
        mean_quality = 100 * np.mean(vals) / het_graph.size
        assert mean_quality == pytest.approx(100, abs=8)

    def test_higher_l_reduces_variance(self, het_graph):
        lo = [
            SampleCollideEstimator(het_graph, l=5, rng=s).estimate().value
            for s in range(20)
        ]
        hi = [
            SampleCollideEstimator(het_graph, l=200, rng=s).estimate().value
            for s in range(20)
        ]
        assert np.std(hi) < np.std(lo)

    def test_meta_fields(self, het_graph):
        est = SampleCollideEstimator(het_graph, l=20, rng=3).estimate()
        assert est.meta["collisions"] >= 20
        assert est.meta["draws"] > est.meta["collisions"]
        assert est.meta["distinct"] <= est.meta["draws"]
        assert est.meta["l"] == 20

    def test_deterministic_given_seed(self, het_graph):
        a = SampleCollideEstimator(het_graph, l=30, rng=9).estimate()
        b = SampleCollideEstimator(het_graph, l=30, rng=9).estimate()
        assert a.value == b.value
        assert a.messages == b.messages

    def test_fixed_initiator(self, het_graph):
        init = het_graph.random_node(0)
        est = SampleCollideEstimator(het_graph, l=20, initiator=init, rng=4).estimate()
        assert est.meta["initiator"] == init

    def test_departed_initiator_rejected(self):
        g = heterogeneous_random(100, rng=5)
        est = SampleCollideEstimator(g, l=5, initiator=0, rng=5)
        g.remove_node(0)
        with pytest.raises(EstimatorError):
            est.estimate()

    def test_empty_overlay_rejected(self):
        with pytest.raises(EstimatorError):
            SampleCollideEstimator(OverlayGraph(), l=5).estimate()

    def test_invalid_l(self, small_het_graph):
        with pytest.raises(ValueError):
            SampleCollideEstimator(small_het_graph, l=0)

    def test_single_node_graph(self):
        g = OverlayGraph(nodes=[0])
        est = SampleCollideEstimator(g, l=3, rng=6).estimate()
        # Every sample is the initiator; collisions come instantly and the
        # estimate collapses to ~1.
        assert est.value <= 3


class TestOverheadAccounting:
    def test_messages_match_meter_delta(self, het_graph):
        meter = MessageMeter()
        meter.add(MessageKind.CONTROL, 123)  # pre-existing traffic
        est = SampleCollideEstimator(het_graph, l=30, rng=7, meter=meter).estimate()
        assert est.messages == meter.total - 123

    def test_walk_and_reply_split(self, het_graph):
        meter = MessageMeter()
        est = SampleCollideEstimator(het_graph, l=30, rng=8, meter=meter).estimate()
        assert meter.count(MessageKind.REPLY) == est.meta["draws"]
        assert meter.count(MessageKind.WALK) == est.meta["walk_hops"]

    def test_cost_scales_with_sqrt_l(self, het_graph):
        # cost(l=200)/cost(l=50) ≈ sqrt(4) = 2.
        m50 = np.mean([
            SampleCollideEstimator(het_graph, l=50, rng=s).estimate().messages
            for s in range(5)
        ])
        m200 = np.mean([
            SampleCollideEstimator(het_graph, l=200, rng=s).estimate().messages
            for s in range(5)
        ])
        assert m200 / m50 == pytest.approx(2.0, rel=0.2)

    def test_cost_scales_with_sqrt_n(self):
        g_small = heterogeneous_random(500, rng=11)
        g_big = heterogeneous_random(2_000, rng=12)
        m_small = np.mean([
            SampleCollideEstimator(g_small, l=50, rng=s).estimate().messages
            for s in range(5)
        ])
        m_big = np.mean([
            SampleCollideEstimator(g_big, l=50, rng=s).estimate().messages
            for s in range(5)
        ])
        assert m_big / m_small == pytest.approx(2.0, rel=0.3)  # sqrt(4x)


class TestInvertedBirthday:
    def test_positive_estimate(self, het_graph):
        est = InvertedBirthdayEstimator(het_graph, rng=1).estimate()
        assert est.value > 0
        assert est.algorithm == "inverted_birthday"

    def test_mean_order_of_magnitude(self, het_graph):
        # X^2/2 has ~100% relative std; the mean over many runs lands near N
        # (E[X^2]/2 = N + O(sqrt N)) but individual runs roam widely.
        vals = [
            InvertedBirthdayEstimator(het_graph, rng=s).estimate().value
            for s in range(60)
        ]
        assert np.mean(vals) == pytest.approx(het_graph.size, rel=0.45)

    def test_noisier_than_sample_collide(self, het_graph):
        ib = [
            InvertedBirthdayEstimator(het_graph, rng=s).estimate().value
            for s in range(20)
        ]
        sc = [
            SampleCollideEstimator(het_graph, l=100, rng=s).estimate().value
            for s in range(20)
        ]
        assert np.std(ib) > 2 * np.std(sc)

    def test_meter_accounting(self, het_graph):
        meter = MessageMeter()
        est = InvertedBirthdayEstimator(het_graph, rng=5, meter=meter).estimate()
        assert meter.count(MessageKind.REPLY) == est.meta["draws"]
        assert est.messages == meter.total

    def test_empty_overlay_rejected(self):
        with pytest.raises(EstimatorError):
            InvertedBirthdayEstimator(OverlayGraph()).estimate()

    def test_departed_initiator_rejected(self):
        g = heterogeneous_random(50, rng=5)
        est = InvertedBirthdayEstimator(g, initiator=0, rng=5)
        g.remove_node(0)
        with pytest.raises(EstimatorError):
            est.estimate()

    def test_deterministic(self, small_het_graph):
        a = InvertedBirthdayEstimator(small_het_graph, rng=3).estimate()
        b = InvertedBirthdayEstimator(small_het_graph, rng=3).estimate()
        assert a.value == b.value
