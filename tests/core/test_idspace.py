"""Tests for the identifier-space substrate and id-density estimators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import EstimatorError
from repro.core.idspace import (
    IdentifierSpace,
    IntervalDensityEstimator,
    NeighborDistanceEstimator,
)
from repro.overlay.builders import heterogeneous_random
from repro.overlay.graph import OverlayGraph
from repro.sim.messages import MessageKind, MessageMeter


class TestIdentifierSpace:
    def test_ids_in_unit_interval(self, small_het_graph):
        space = IdentifierSpace(small_het_graph, rng=1)
        for u in list(small_het_graph.nodes())[:50]:
            assert 0.0 <= space.id_of(u) < 1.0

    def test_ids_stable(self, small_het_graph):
        space = IdentifierSpace(small_het_graph, rng=1)
        u = small_het_graph.random_node(0)
        assert space.id_of(u) == space.id_of(u)

    def test_dead_node_rejected(self, small_het_graph):
        space = IdentifierSpace(small_het_graph, rng=1)
        with pytest.raises(EstimatorError):
            space.id_of(10**9)

    def test_size_tracks_membership(self):
        g = heterogeneous_random(100, rng=2)
        space = IdentifierSpace(g, rng=3)
        assert space.size == 100
        g.remove_node(g.random_node(0))
        space.refresh()
        assert space.size == 99

    def test_arc_of_all_nodes_is_full_circle(self):
        g = OverlayGraph(nodes=range(10))
        space = IdentifierSpace(g, rng=4)
        assert space.arc_of_k_nearest(0.5, 10) == 1.0

    def test_arc_monotone_in_k(self):
        g = OverlayGraph(nodes=range(200))
        space = IdentifierSpace(g, rng=5)
        arcs = [space.arc_of_k_nearest(0.3, k) for k in (5, 20, 80)]
        assert arcs == sorted(arcs)

    def test_arc_k_too_large(self):
        g = OverlayGraph(nodes=range(5))
        space = IdentifierSpace(g, rng=6)
        with pytest.raises(EstimatorError):
            space.arc_of_k_nearest(0.1, 6)
        with pytest.raises(ValueError):
            space.arc_of_k_nearest(0.1, 0)

    def test_successor_gaps_sum_to_partial_circle(self):
        g = OverlayGraph(nodes=range(50))
        space = IdentifierSpace(g, rng=7)
        u = 3
        space.refresh()
        gaps = space.successor_gaps(u, 49)
        assert sum(gaps) == pytest.approx(1.0 - 0.0, abs=1.0)  # < full circle
        assert all(gap >= 0 for gap in gaps)

    def test_successor_gaps_validation(self):
        g = OverlayGraph(nodes=range(5))
        space = IdentifierSpace(g, rng=8)
        with pytest.raises(ValueError):
            space.successor_gaps(0, 0)
        with pytest.raises(EstimatorError):
            space.successor_gaps(0, 5)


class TestWithTransform:
    def test_transform_applied_to_every_id(self):
        g = OverlayGraph(nodes=range(100))
        space = IdentifierSpace(g, rng=9)
        skewed = space.with_transform(lambda pos: pos**3.0)
        for u in g.nodes():
            assert skewed.id_of(u) == space.id_of(u) ** 3.0

    def test_original_space_untouched(self):
        g = OverlayGraph(nodes=range(50))
        space = IdentifierSpace(g, rng=10)
        before = {u: space.id_of(u) for u in g.nodes()}
        space.with_transform(lambda pos: 0.0)
        assert {u: space.id_of(u) for u in g.nodes()} == before

    def test_power_transform_skews_density(self):
        # the idspace ablation's adversarial assignment: cubing piles
        # ids up near 0, so the median id drops well below 0.5
        g = OverlayGraph(nodes=range(2000))
        skewed = IdentifierSpace(g, rng=11).with_transform(lambda pos: pos**3.0)
        skewed.refresh()
        ids = [skewed.id_of(u) for u in g.nodes()]
        assert float(np.median(ids)) < 0.25

    def test_registry_transform_matches_inline(self):
        from repro.core.idspace import make_transform

        fn = make_transform("power", exponent=3.0)
        assert fn(0.5) == 0.5**3.0
        assert make_transform("uniform")(0.25) == 0.25
        with pytest.raises(ValueError):
            make_transform("zipf")


class TestIntervalDensity:
    def test_accuracy_scales_with_k(self):
        g = heterogeneous_random(3_000, rng=9)
        space = IdentifierSpace(g, rng=10)
        lo = [
            IntervalDensityEstimator(g, space=space, k=8, rng=s).estimate().value
            for s in range(25)
        ]
        hi = [
            IntervalDensityEstimator(g, space=space, k=200, rng=s).estimate().value
            for s in range(25)
        ]
        assert np.std(hi) < np.std(lo)

    def test_unbiased_mean(self):
        g = heterogeneous_random(2_000, rng=11)
        space = IdentifierSpace(g, rng=12)
        vals = [
            IntervalDensityEstimator(g, space=space, k=100, rng=s).estimate().value
            for s in range(30)
        ]
        assert np.mean(vals) == pytest.approx(2_000, rel=0.1)

    def test_message_cost_is_k(self):
        g = heterogeneous_random(500, rng=13)
        meter = MessageMeter()
        est = IntervalDensityEstimator(g, k=40, rng=14, meter=meter).estimate()
        assert est.messages == 40
        assert meter.count(MessageKind.WALK) == 40

    def test_k_validation(self, small_het_graph):
        with pytest.raises(ValueError):
            IntervalDensityEstimator(small_het_graph, k=1)

    def test_k_exceeds_population(self):
        g = OverlayGraph(nodes=range(10))
        with pytest.raises(EstimatorError):
            IntervalDensityEstimator(g, k=50, rng=1).estimate()

    def test_empty_overlay(self):
        with pytest.raises(EstimatorError):
            IntervalDensityEstimator(OverlayGraph(), k=2).estimate()

    def test_tracks_churn_after_refresh(self):
        g = heterogeneous_random(1_000, rng=15)
        space = IdentifierSpace(g, rng=16)
        for u in list(g.nodes())[:500]:
            g.remove_node(u)
        vals = [
            IntervalDensityEstimator(g, space=space, k=60, rng=s).estimate().value
            for s in range(20)
        ]
        assert np.mean(vals) == pytest.approx(500, rel=0.15)


class TestNeighborDistance:
    def test_unbiased_mean(self):
        g = heterogeneous_random(2_000, rng=17)
        space = IdentifierSpace(g, rng=18)
        vals = [
            NeighborDistanceEstimator(g, space=space, gaps=32, rng=s).estimate().value
            for s in range(30)
        ]
        assert np.mean(vals) == pytest.approx(2_000, rel=0.25)

    def test_more_gaps_less_variance(self):
        g = heterogeneous_random(2_000, rng=19)
        space = IdentifierSpace(g, rng=20)
        lo = [
            NeighborDistanceEstimator(g, space=space, gaps=2, rng=s).estimate().value
            for s in range(25)
        ]
        hi = [
            NeighborDistanceEstimator(g, space=space, gaps=64, rng=s).estimate().value
            for s in range(25)
        ]
        assert np.std(hi) < np.std(lo)

    def test_message_cost(self):
        g = heterogeneous_random(300, rng=21)
        est = NeighborDistanceEstimator(g, gaps=10, rng=22).estimate()
        assert est.messages == 10

    def test_validation(self, small_het_graph):
        with pytest.raises(ValueError):
            NeighborDistanceEstimator(small_het_graph, gaps=0)

    def test_registry_integration(self, small_het_graph):
        from repro.core.registry import create

        est = create("interval_density", small_het_graph, k=10, rng=1).estimate()
        assert est.value > 0
        est = create("neighbor_distance", small_het_graph, gaps=8, rng=1).estimate()
        assert est.value > 0
