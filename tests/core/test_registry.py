"""Tests for the estimator registry."""

from __future__ import annotations

import pytest

from repro.core import registry
from repro.core.aggregation import AggregationProtocol
from repro.core.hops_sampling import HopsSamplingEstimator
from repro.core.registry import RegistryError, available, create, register
from repro.core.sample_collide import SampleCollideEstimator


class TestBuiltins:
    def test_all_candidates_registered(self):
        names = available()
        for expected in (
            "sample_collide",
            "hops_sampling",
            "aggregation",
            "inverted_birthday",
            "random_tour",
            "gossip_sample",
        ):
            assert expected in names

    def test_create_sample_collide(self, small_het_graph):
        est = create("sample_collide", small_het_graph, l=20, rng=1)
        assert isinstance(est, SampleCollideEstimator)
        assert est.l == 20

    def test_create_hops(self, small_het_graph):
        est = create("hops_sampling", small_het_graph, rng=1)
        assert isinstance(est, HopsSamplingEstimator)

    def test_create_aggregation(self, small_het_graph):
        proto = create("aggregation", small_het_graph, rng=1)
        assert isinstance(proto, AggregationProtocol)

    def test_created_estimators_run(self, small_het_graph):
        for name in ("sample_collide", "hops_sampling", "random_tour"):
            est = create(name, small_het_graph, rng=2)
            assert est.estimate().value > 0


class TestRegistration:
    def test_unknown_name(self, small_het_graph):
        with pytest.raises(RegistryError, match="unknown estimator"):
            create("nope", small_het_graph)

    def test_register_and_create_custom(self, small_het_graph):
        class Fake:
            def __init__(self, graph, **kw):
                self.graph = graph

            def estimate(self):
                return None

        register("fake_estimator_for_test", Fake)
        try:
            obj = create("fake_estimator_for_test", small_het_graph)
            assert isinstance(obj, Fake)
        finally:
            registry._FACTORIES.pop("fake_estimator_for_test", None)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register("sample_collide", lambda g: None)

    def test_overwrite_flag(self):
        original = registry._FACTORIES["sample_collide"]
        try:
            register("sample_collide", original, overwrite=True)
        finally:
            registry._FACTORIES["sample_collide"] = original

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError):
            register("", lambda g: None)

    def test_available_is_sorted(self):
        names = available()
        assert names == sorted(names)
