"""Property-based tests for the gossip spread and walk sampler internals.

These pin down structural invariants that hold for *any* overlay and any
seed — the kind of guarantee unit tests on fixed fixtures cannot give.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hops_sampling import _gossip_spread
from repro.core.sample_collide import SampleCollideEstimator
from repro.core.sampling import UniformWalkSampler
from repro.overlay.builders import erdos_renyi, heterogeneous_random, ring_lattice

_seeds = st.integers(0, 2**31 - 1)
_sizes = st.integers(5, 300)


def _overlay(kind: int, n: int, seed: int):
    if kind == 0:
        return heterogeneous_random(n, rng=seed)
    if kind == 1:
        return erdos_renyi(n, avg_degree=6, rng=seed)
    return ring_lattice(n, k=2)


class TestSpreadInvariants:
    @given(st.integers(0, 2), _sizes, _seeds, st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_reached_set_is_gossip_connected(self, kind, n, seed, fanout):
        """Every reached node (except the initiator) has a neighbour whose
        recorded distance is strictly smaller — i.e. recorded distances
        witness actual gossip paths back to the initiator."""
        g = _overlay(kind, n, seed)
        view = g.csr()
        rng = np.random.default_rng(seed + 1)
        spread = _gossip_spread(view, 0, fanout, 1, 1, rng)
        hops = spread.hops
        for pos in range(view.n):
            h = hops[pos]
            if h <= 0:
                continue
            neighbour_hops = [hops[int(q)] for q in view.neighbors(pos)]
            assert any(0 <= nh < h for nh in neighbour_hops), (
                f"node at recorded distance {h} has no closer neighbour"
            )

    @given(st.integers(0, 2), _sizes, _seeds)
    @settings(max_examples=60, deadline=None)
    def test_spread_accounting(self, kind, n, seed):
        g = _overlay(kind, n, seed)
        view = g.csr()
        spread = _gossip_spread(view, 0, 2, 1, 1, np.random.default_rng(seed))
        assert 1 <= spread.reached <= view.n
        assert spread.rounds >= 1
        # every message was sent by an informed node with a live neighbour
        assert spread.spread_messages >= 0
        if view.degrees()[0] > 0:
            assert spread.spread_messages >= 2  # initiator's first fanout

    @given(_sizes, _seeds)
    @settings(max_examples=40, deadline=None)
    def test_initiator_always_reached_at_zero(self, n, seed):
        g = heterogeneous_random(n, rng=seed)
        view = g.csr()
        init = int(seed % view.n)
        spread = _gossip_spread(view, init, 2, 1, 1, np.random.default_rng(seed))
        assert spread.hops[init] == 0


class TestWalkInvariants:
    @given(st.integers(0, 2), _sizes, _seeds, st.floats(0.5, 20.0))
    @settings(max_examples=50, deadline=None)
    def test_walks_always_terminate_on_alive_nodes(self, kind, n, seed, timer):
        g = _overlay(kind, n, seed)
        sampler = UniformWalkSampler(g, timer=timer, rng=seed)
        init = g.random_node(seed)
        batch = sampler.sample_batch(init, 12)
        for node, hops in zip(batch.samples, batch.hops):
            assert int(node) in g
            assert hops >= 0
            if g.degree(init) > 0:
                assert hops >= 1  # the initiator always forwards once

    @given(_sizes, _seeds)
    @settings(max_examples=40, deadline=None)
    def test_sample_collide_meta_identity(self, n, seed):
        """draws = distinct + collisions (with multiplicity weighting the
        collision count can exceed draws - distinct only when a node is hit
        3+ times; the inequality below is the exact relationship)."""
        g = heterogeneous_random(n, rng=seed)
        est = SampleCollideEstimator(g, l=5, rng=seed + 1).estimate()
        draws = est.meta["draws"]
        distinct = est.meta["distinct"]
        collisions = est.meta["collisions"]
        # each of the (draws - distinct) repeat draws contributes >= 1
        assert collisions >= draws - distinct
        assert distinct <= draws
        assert est.value > 0
