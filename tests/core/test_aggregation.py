"""Tests for gossip-based Aggregation: the protocol and the monitor."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.churn.models import ChurnEvent, ChurnTrace
from repro.churn.scheduler import ChurnScheduler
from repro.core.aggregation import AggregationMonitor, AggregationProtocol
from repro.core.base import EstimatorError
from repro.overlay.builders import heterogeneous_random
from repro.overlay.graph import OverlayGraph
from repro.overlay.membership import MembershipPolicy
from repro.sim.messages import MessageKind, MessageMeter
from repro.sim.rounds import RoundDriver


class TestEpochLifecycle:
    def test_start_epoch_sets_unit_mass(self, small_het_graph):
        proto = AggregationProtocol(small_het_graph, rng=1)
        proto.start_epoch()
        assert proto.total_mass() == pytest.approx(1.0)
        assert proto.value_of(proto.initiator) == 1.0

    def test_epoch_counter(self, small_het_graph):
        proto = AggregationProtocol(small_het_graph, rng=1)
        assert proto.epoch == 0
        proto.start_epoch()
        assert proto.epoch == 1
        proto.start_epoch()
        assert proto.epoch == 2

    def test_explicit_initiator(self, small_het_graph):
        init = small_het_graph.random_node(0)
        proto = AggregationProtocol(small_het_graph, rng=1)
        proto.start_epoch(initiator=init)
        assert proto.initiator == init

    def test_dead_initiator_rejected(self, small_het_graph):
        proto = AggregationProtocol(small_het_graph, rng=1)
        with pytest.raises(EstimatorError):
            proto.start_epoch(initiator=10**9)

    def test_empty_overlay_rejected(self):
        with pytest.raises(EstimatorError):
            AggregationProtocol(OverlayGraph()).start_epoch()

    def test_round_before_epoch_rejected(self, small_het_graph):
        with pytest.raises(EstimatorError):
            AggregationProtocol(small_het_graph, rng=1).run_round()


class TestMassConservation:
    def test_static_mass_invariant(self, small_het_graph):
        # THE core invariant: push-pull averaging conserves total mass in a
        # static overlay, hence convergence to exactly 1/N.
        proto = AggregationProtocol(small_het_graph, rng=2)
        proto.start_epoch()
        for _ in range(30):
            proto.run_round()
            assert proto.total_mass() == pytest.approx(1.0, abs=1e-9)

    def test_values_stay_nonnegative(self, small_het_graph):
        proto = AggregationProtocol(small_het_graph, rng=3)
        proto.start_epoch()
        proto.run_rounds(20)
        view = small_het_graph.csr()
        for node in view.nodes:
            assert proto.value_of(int(node)) >= 0.0

    def test_max_value_contracts(self, small_het_graph):
        proto = AggregationProtocol(small_het_graph, rng=4)
        proto.start_epoch()
        proto.run_rounds(3)
        early = max(proto.value_of(int(u)) for u in small_het_graph.nodes())
        proto.run_rounds(20)
        late = max(proto.value_of(int(u)) for u in small_het_graph.nodes())
        assert late < early


class TestConvergence:
    def test_converges_to_exact_size(self, small_het_graph):
        proto = AggregationProtocol(small_het_graph, rng=5)
        est = proto.estimate(rounds=40)
        assert est.value == pytest.approx(small_het_graph.size, rel=0.01)

    def test_every_node_converges(self, small_het_graph):
        proto = AggregationProtocol(small_het_graph, rng=6)
        proto.start_epoch()
        proto.run_rounds(45)
        ests = proto.read_all()
        assert np.isfinite(ests).all()
        assert np.allclose(ests, small_het_graph.size, rtol=0.05)

    def test_convergence_rounds_scale_with_log_n(self):
        # Rounds to 1% error should grow roughly with log N, the paper's
        # 40-at-100k vs 50-at-1M observation.
        def rounds_to_converge(n, seed):
            g = heterogeneous_random(n, rng=seed)
            proto = AggregationProtocol(g, rng=seed + 1)
            proto.start_epoch()
            for r in range(1, 200):
                proto.run_round()
                if abs(proto.read().value - g.size) / g.size < 0.01:
                    return r
            return 200

        r_small = rounds_to_converge(200, 7)
        r_big = rounds_to_converge(2_000, 8)
        assert r_small < r_big <= r_small + 25

    def test_read_before_reached_rejected(self):
        # A node in a different component never receives mass.
        g = OverlayGraph(nodes=[0, 1, 2, 3], edges=[(0, 1), (2, 3)])
        proto = AggregationProtocol(g, rng=9)
        proto.start_epoch(initiator=0)
        proto.run_rounds(10)
        with pytest.raises(EstimatorError):
            proto.read(node=2)

    def test_disconnected_component_estimates_component_size(self):
        # Mass stays in the initiator's component: the estimate converges to
        # the component size, not the overlay size (Fig 17's mechanism).
        g = OverlayGraph(nodes=range(6), edges=[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5)])
        proto = AggregationProtocol(g, rng=10)
        proto.start_epoch(initiator=0)
        proto.run_rounds(60)
        assert proto.read(node=0).value == pytest.approx(3.0, rel=0.01)


class TestOverhead:
    def test_two_messages_per_contact(self, small_het_graph):
        meter = MessageMeter()
        proto = AggregationProtocol(small_het_graph, rng=11, meter=meter)
        proto.start_epoch()
        contacts = proto.run_round()
        assert meter.count(MessageKind.EXCHANGE) == 2 * contacts

    def test_full_estimate_cost_formula(self, small_het_graph):
        # No isolated nodes in the fixture => contacts = N per round and
        # overhead = N * rounds * 2 exactly (the paper's formula).
        est = AggregationProtocol(small_het_graph, rng=12).estimate(rounds=10)
        assert est.messages == small_het_graph.size * 10 * 2


class TestChurnSemantics:
    def test_departures_freeze_estimate_conservative_effect(self):
        # §IV-D: once converged, removing nodes leaves the estimate at the
        # epoch-start size (mass and population shrink proportionally).
        g = heterogeneous_random(500, rng=13)
        proto = AggregationProtocol(g, rng=14)
        proto.start_epoch()
        proto.run_rounds(40)
        MembershipPolicy(g, rng=15).leave(125)  # -25%
        proto.run_rounds(20)
        est = proto.read(node=None)
        assert est.value == pytest.approx(500, rel=0.1)  # stale, NOT 375

    def test_joins_tracked_within_epoch(self):
        # Joiners enter at value 0 (mass preserving) => estimate grows to
        # the new size without a restart.
        g = heterogeneous_random(500, rng=16)
        proto = AggregationProtocol(g, rng=17)
        proto.start_epoch()
        proto.run_rounds(30)
        MembershipPolicy(g, rng=18).join(250)  # +50%
        proto.run_rounds(40)
        assert proto.read().value == pytest.approx(750, rel=0.05)

    def test_initiator_departure_read_falls_back(self):
        g = heterogeneous_random(300, rng=19)
        proto = AggregationProtocol(g, rng=20)
        proto.start_epoch()
        proto.run_rounds(30)
        g.remove_node(proto.initiator)
        proto.run_rounds(5)
        est = proto.read()  # falls back to best-informed alive node
        assert est.value == pytest.approx(300, rel=0.1)

    def test_mass_drops_when_holder_leaves_early(self):
        g = heterogeneous_random(100, rng=21)
        proto = AggregationProtocol(g, rng=22)
        proto.start_epoch()
        # Remove the initiator before any gossip: the whole unit of mass
        # vanishes with it.
        g.remove_node(proto.initiator)
        proto.run_rounds(2)
        assert proto.total_mass() == pytest.approx(0.0, abs=1e-12)


class TestMonitor:
    def test_restart_cadence(self, small_het_graph):
        driver = RoundDriver()
        monitor = AggregationMonitor(small_het_graph, restart_interval=20, rng=23)
        monitor.attach(driver)
        driver.run(100)
        rounds = [r for r, _ in monitor.epoch_estimates]
        assert len(rounds) == 4  # epochs close at 21, 41, 61, 81... ~4 in 100
        assert monitor.failures == 0

    def test_estimates_accurate_in_static_overlay(self, small_het_graph):
        driver = RoundDriver()
        monitor = AggregationMonitor(small_het_graph, restart_interval=30, rng=24)
        monitor.attach(driver)
        driver.run(95)
        for _, est in monitor.epoch_estimates:
            assert est == pytest.approx(small_het_graph.size, rel=0.02)

    def test_series_holds_last_estimate(self, small_het_graph):
        driver = RoundDriver()
        monitor = AggregationMonitor(small_het_graph, restart_interval=10, rng=25)
        monitor.attach(driver)
        driver.run(25)
        # Before the first epoch closes the series is NaN; after, it holds.
        assert math.isnan(monitor.series[0])
        assert monitor.series[-1] == monitor.epoch_estimates[-1][1]

    def test_tracks_growth_across_epochs(self):
        g = heterogeneous_random(300, rng=26)
        trace = ChurnTrace([ChurnEvent(time=15.0, joins=300)])
        driver = RoundDriver()
        ChurnScheduler(g, trace, rng=27).attach(driver)
        monitor = AggregationMonitor(g, restart_interval=25, rng=28)
        monitor.attach(driver)
        driver.run(110)
        final_estimates = [e for _, e in monitor.epoch_estimates][-2:]
        for est in final_estimates:
            assert est == pytest.approx(600, rel=0.1)

    def test_invalid_interval(self, small_het_graph):
        with pytest.raises(ValueError):
            AggregationMonitor(small_het_graph, restart_interval=0)

    def test_survives_total_failure_window(self):
        # Overlay empties entirely, then refills: the monitor must not crash
        # and must resume estimating.
        g = heterogeneous_random(100, rng=29)
        trace = ChurnTrace([
            ChurnEvent(time=5.0, frac_leaves=1.0),
            ChurnEvent(time=10.0, joins=50),
        ])
        driver = RoundDriver()
        ChurnScheduler(g, trace, rng=30).attach(driver)
        monitor = AggregationMonitor(g, restart_interval=15, rng=31)
        monitor.attach(driver)
        driver.run(80)
        assert g.size == 50
        assert monitor.epoch_estimates  # produced something after recovery
