"""Tests for the timer-walk uniform sampler (§III-A)."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro.core.sampling import UniformWalkSampler
from repro.overlay.builders import heterogeneous_random, ring_lattice, scale_free
from repro.overlay.graph import OverlayGraph
from repro.sim.messages import MessageKind, MessageMeter


class TestBasics:
    def test_batch_shapes(self, small_het_graph):
        sampler = UniformWalkSampler(small_het_graph, timer=10, rng=1)
        init = small_het_graph.random_node(0)
        batch = sampler.sample_batch(init, 50)
        assert len(batch) == 50
        assert batch.samples.shape == (50,)
        assert batch.hops.shape == (50,)

    def test_samples_are_alive_nodes(self, small_het_graph):
        sampler = UniformWalkSampler(small_het_graph, timer=10, rng=2)
        init = small_het_graph.random_node(0)
        batch = sampler.sample_batch(init, 100)
        for s in batch.samples:
            assert int(s) in small_het_graph

    def test_zero_count(self, small_het_graph):
        sampler = UniformWalkSampler(small_het_graph, timer=10, rng=3)
        batch = sampler.sample_batch(small_het_graph.random_node(0), 0)
        assert len(batch) == 0

    def test_negative_count_rejected(self, small_het_graph):
        sampler = UniformWalkSampler(small_het_graph, rng=3)
        with pytest.raises(ValueError):
            sampler.sample_batch(small_het_graph.random_node(0), -1)

    def test_dead_initiator_rejected(self, small_het_graph):
        sampler = UniformWalkSampler(small_het_graph, rng=3)
        with pytest.raises(ValueError):
            sampler.sample_batch(10**9, 5)

    def test_invalid_timer(self, small_het_graph):
        with pytest.raises(ValueError):
            UniformWalkSampler(small_het_graph, timer=0.0)
        with pytest.raises(ValueError):
            UniformWalkSampler(small_het_graph, timer=5.0, max_hops=0)

    def test_isolated_initiator_samples_itself(self):
        g = OverlayGraph(nodes=[0])
        sampler = UniformWalkSampler(g, timer=10, rng=4)
        batch = sampler.sample_batch(0, 5)
        assert list(batch.samples) == [0] * 5
        assert list(batch.hops) == [0] * 5

    def test_two_node_graph(self):
        g = OverlayGraph(nodes=[0, 1], edges=[(0, 1)])
        sampler = UniformWalkSampler(g, timer=5, rng=5)
        batch = sampler.sample_batch(0, 40)
        assert set(int(s) for s in batch.samples) <= {0, 1}
        assert (batch.hops >= 1).all()


class TestMetering:
    def test_meter_counts_hops_and_replies(self, small_het_graph):
        sampler = UniformWalkSampler(small_het_graph, timer=10, rng=6)
        meter = MessageMeter()
        batch = sampler.sample_batch(small_het_graph.random_node(0), 30, meter=meter)
        assert meter.count(MessageKind.WALK) == batch.total_hops
        assert meter.count(MessageKind.REPLY) == 30

    def test_no_meter_is_fine(self, small_het_graph):
        sampler = UniformWalkSampler(small_het_graph, timer=10, rng=6)
        sampler.sample_batch(small_het_graph.random_node(0), 5, meter=None)


class TestWalkLength:
    def test_expected_hops_scales_with_timer(self, het_graph):
        init = het_graph.random_node(0)
        short = UniformWalkSampler(het_graph, timer=2, rng=7)
        long = UniformWalkSampler(het_graph, timer=10, rng=7)
        h_short = short.sample_batch(init, 200).hops.mean()
        h_long = long.sample_batch(init, 200).hops.mean()
        assert h_long > 3 * h_short

    def test_mean_hops_near_timer_times_degree(self, het_graph):
        # Theory: E[hops] ≈ T · d̄ (degree-biased jump chain consumes 1/d̄
        # of budget per hop on average).
        sampler = UniformWalkSampler(het_graph, timer=10, rng=8)
        init = het_graph.random_node(1)
        got = sampler.sample_batch(init, 400).hops.mean()
        expect = sampler.expected_hops_per_walk()
        assert got == pytest.approx(expect, rel=0.15)

    def test_max_hops_cap(self, small_het_graph):
        sampler = UniformWalkSampler(small_het_graph, timer=1e9, rng=9, max_hops=50)
        batch = sampler.sample_batch(small_het_graph.random_node(0), 10)
        assert (batch.hops <= 51).all()

    def test_expected_hops_empty_graph(self):
        g = OverlayGraph(nodes=[0])
        assert UniformWalkSampler(g, timer=10).expected_hops_per_walk() == 0.0


class TestUniformity:
    """The sampler's whole point: asymptotically uniform samples even on
    degree-heterogeneous graphs (a plain random walk would be degree-biased).
    """

    def _chi2_pvalue(self, graph, timer, draws=6_000, seed=10):
        sampler = UniformWalkSampler(graph, timer=timer, rng=seed)
        init = graph.random_node(0)
        batch = sampler.sample_batch(init, draws)
        view = graph.csr()
        counts = np.zeros(view.n)
        for s in batch.samples:
            counts[view.index_of[int(s)]] += 1
        expected = draws / view.n
        chi2 = ((counts - expected) ** 2 / expected).sum()
        return stats.chi2.sf(chi2, df=view.n - 1)

    def test_uniform_on_heterogeneous_graph(self):
        g = heterogeneous_random(150, rng=21)
        p = self._chi2_pvalue(g, timer=30.0)
        assert p > 1e-3  # not rejected at any sane level

    def test_uniform_on_scale_free_graph(self):
        # This is the case where naive degree-biased sampling fails hardest.
        g = scale_free(150, m=3, rng=22)
        p = self._chi2_pvalue(g, timer=30.0)
        assert p > 1e-3

    def test_tiny_timer_is_biased_near_initiator(self):
        # Sanity check of the test itself: with an insufficient budget the
        # walk barely leaves the initiator and uniformity must fail.
        g = ring_lattice(150, k=1)  # poor expansion amplifies the effect
        p = self._chi2_pvalue(g, timer=0.5)
        assert p < 1e-6

    def test_degree_bias_removed(self):
        # Sampling frequency must not correlate with degree.
        g = scale_free(200, m=2, rng=23)
        sampler = UniformWalkSampler(g, timer=30.0, rng=24)
        batch = sampler.sample_batch(g.random_node(0), 8_000)
        view = g.csr()
        counts = np.zeros(view.n)
        for s in batch.samples:
            counts[view.index_of[int(s)]] += 1
        degs = view.degrees().astype(float)
        corr = np.corrcoef(degs, counts)[0, 1]
        assert abs(corr) < 0.12
