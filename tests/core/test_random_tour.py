"""Tests for the Random Tour baseline estimator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import EstimatorError
from repro.core.random_tour import RandomTourEstimator
from repro.overlay.builders import heterogeneous_random, ring_lattice
from repro.overlay.graph import OverlayGraph
from repro.sim.messages import MessageKind, MessageMeter


def _complete_graph(n: int) -> OverlayGraph:
    g = OverlayGraph(nodes=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            g.add_edge(u, v)
    return g


class TestCorrectness:
    def test_positive_estimate(self, small_het_graph):
        est = RandomTourEstimator(small_het_graph, rng=1).estimate()
        assert est.value > 0
        assert est.algorithm == "random_tour"

    def test_unbiased_mean_on_regular_graph(self):
        # On a d-regular graph, N̂ = d * (tour length)/d = number of steps
        # counted; E equals N exactly.  Return times are heavy-tailed
        # (per-tour relative std is several 100%), so averaging needs many
        # tours even on a 60-node ring.
        g = ring_lattice(60, k=2)
        vals = [RandomTourEstimator(g, rng=s).estimate().value for s in range(2_500)]
        assert np.mean(vals) == pytest.approx(60, rel=0.15)

    def test_unbiased_mean_on_heterogeneous_graph(self):
        g = heterogeneous_random(120, rng=4)
        vals = [RandomTourEstimator(g, rng=s).estimate().value for s in range(500)]
        assert np.mean(vals) == pytest.approx(g.size, rel=0.2)

    def test_two_node_graph_exact(self):
        # Tour from either node returns in exactly 2 hops; phi = 1/1 + 1/1
        # = 2; estimate = 1 * 2 = 2 = N, deterministically.
        g = OverlayGraph(nodes=[0, 1], edges=[(0, 1)])
        est = RandomTourEstimator(g, initiator=0, rng=1).estimate()
        assert est.value == pytest.approx(2.0)
        assert est.meta["hops"] == 2

    def test_complete_graph_mean(self):
        g = _complete_graph(12)
        vals = [RandomTourEstimator(g, rng=s).estimate().value for s in range(400)]
        assert np.mean(vals) == pytest.approx(12, rel=0.15)

    def test_meta_contents(self, small_het_graph):
        est = RandomTourEstimator(small_het_graph, rng=3).estimate()
        assert est.meta["hops"] >= 1
        assert est.meta["phi"] > 0
        assert est.meta["initiator_degree"] >= 1


class TestOverhead:
    def test_messages_equal_hops(self, small_het_graph):
        meter = MessageMeter()
        est = RandomTourEstimator(small_het_graph, rng=5, meter=meter).estimate()
        assert est.messages == est.meta["hops"]
        assert meter.count(MessageKind.WALK) == est.meta["hops"]

    def test_expected_cost_theta_n(self):
        # Mean tour length is 2m/deg(i); averaged over initiators that is
        # Θ(N).  Check the factor-of-n scaling between two sizes.
        small = heterogeneous_random(200, rng=6)
        big = heterogeneous_random(800, rng=7)
        m_small = np.mean(
            [RandomTourEstimator(small, rng=s).estimate().messages for s in range(150)]
        )
        m_big = np.mean(
            [RandomTourEstimator(big, rng=s).estimate().messages for s in range(150)]
        )
        assert m_big / m_small == pytest.approx(4.0, rel=0.5)


class TestErrors:
    def test_empty_overlay(self):
        with pytest.raises(EstimatorError):
            RandomTourEstimator(OverlayGraph()).estimate()

    def test_isolated_initiator(self):
        g = OverlayGraph(nodes=[0, 1], edges=[])
        with pytest.raises(EstimatorError, match="isolated"):
            RandomTourEstimator(g, initiator=0, rng=1).estimate()

    def test_departed_initiator(self):
        g = heterogeneous_random(50, rng=8)
        est = RandomTourEstimator(g, initiator=0, rng=8)
        g.remove_node(0)
        with pytest.raises(EstimatorError):
            est.estimate()

    def test_max_hops_abort(self):
        # max_hops=1 aborts deterministically: the first hop can never be a
        # return (no self-loops), so the budget is spent before any return.
        g = ring_lattice(500, k=1)
        with pytest.raises(EstimatorError, match="no return"):
            RandomTourEstimator(g, rng=9, max_hops=1).estimate()

    def test_deterministic(self, small_het_graph):
        a = RandomTourEstimator(small_het_graph, rng=11).estimate()
        b = RandomTourEstimator(small_het_graph, rng=11).estimate()
        assert a.value == b.value
