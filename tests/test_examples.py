"""The examples are deliverables: keep them importable and runnable.

The quickest example runs end-to-end under a small size; the heavier ones
are compile-checked and checked for up-to-date API usage (they crash at
import time if a symbol they use disappears).
"""

from __future__ import annotations

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {p.name for p in ALL_EXAMPLES}
    assert {
        "quickstart.py",
        "churn_monitoring.py",
        "overhead_budgeting.py",
        "scale_free_study.py",
        "accuracy_planning.py",
        "reproduce_paper.py",
    } <= names


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
def test_examples_compile(path):
    py_compile.compile(str(path), doraise=True)


def test_quickstart_runs_small():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py"), "1500", "3"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert "Sample&Collide" in result.stdout
    assert "Aggregation" in result.stdout
    assert "estimate:" in result.stdout


def test_reproduce_paper_help():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "reproduce_paper.py"), "--help"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 0
    assert "--scale" in result.stdout
