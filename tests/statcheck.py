"""Shared statistical assertion helpers for the test-suite and benchmarks.

The suite accumulated ad-hoc tolerance idioms — ``pytest.approx(100,
abs=4)`` on figure convergence, hand-written ``a <= b + slack`` on
ablation orderings — each encoding a statistical claim ("these runs are
noisy samples of the same law") without naming it.  This module promotes
them into explicit, reusable checks:

* :func:`assert_distributions_close` — the two-sided claim two sample sets
  follow the same distribution, tested with a two-sample
  Kolmogorov-Smirnov gate *and* a bootstrap confidence-interval overlap of
  the means.  This is the cross-validation gate of the array-kernel
  backend (``tests/core/test_kernel_distributions.py``,
  ``docs/KERNELS.md``), with tolerances recorded beside
  ``baselines/trends_baseline.json``.
* :func:`assert_within` — scalar-near-target with an explicit absolute
  tolerance (figure convergence checks).
* :func:`assert_le_with_slack` / :func:`assert_ge_with_slack` — one-sided
  orderings with a noise allowance (ablation and scaling comparisons).

Everything here is numpy-only (no scipy in the CI test matrix): the KS
critical value uses the classic large-sample approximation
``c(α)·sqrt((n+m)/(n·m))`` with ``c(α) = sqrt(-ln(α/2)/2)``, and the CI
helper reuses :func:`repro.analysis.validation.bootstrap_mean_ci`.
Bootstrap resampling is deterministically seeded so a failing check fails
identically on every run.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.analysis.validation import bootstrap_mean_ci

__all__ = [
    "assert_distributions_close",
    "assert_ge_with_slack",
    "assert_le_with_slack",
    "assert_within",
    "ks_critical_value",
    "ks_statistic",
]

#: Fixed seed for bootstrap resampling inside assertions — checks must be
#: reproducible, so the resampling noise is pinned.
_BOOTSTRAP_SEED = 20060619


def ks_statistic(samples_a: Sequence[float], samples_b: Sequence[float]) -> float:
    """Two-sample Kolmogorov-Smirnov statistic ``sup |F_a - F_b|``.

    Vectorized over the pooled sorted values; ties are handled by
    evaluating both empirical CDFs with ``searchsorted(..., side="right")``
    at every pooled point.
    """
    a = np.sort(np.asarray(samples_a, dtype=float))
    b = np.sort(np.asarray(samples_b, dtype=float))
    if a.size == 0 or b.size == 0:
        raise ValueError("KS statistic needs non-empty samples")
    pooled = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, pooled, side="right") / a.size
    cdf_b = np.searchsorted(b, pooled, side="right") / b.size
    return float(np.abs(cdf_a - cdf_b).max())


def ks_critical_value(n: int, m: int, alpha: float) -> float:
    """Large-sample two-sample KS rejection threshold at level ``alpha``.

    ``D > c(α)·sqrt((n+m)/(n·m))`` rejects equality, with
    ``c(α) = sqrt(-ln(α/2)/2)`` (Smirnov's asymptotic inverse).
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    c = math.sqrt(-math.log(alpha / 2.0) / 2.0)
    return c * math.sqrt((n + m) / (n * m))


def assert_distributions_close(
    samples_a: Sequence[float],
    samples_b: Sequence[float],
    *,
    ks_alpha: float = 0.01,
    ci_level: float = 0.95,
    resamples: int = 2000,
    label: str = "",
) -> None:
    """Assert two sample sets are plausibly draws of the same distribution.

    Two independent gates, both of which must pass:

    1. **KS gate** — the two-sample KS statistic stays below the
       level-``ks_alpha`` critical value (small ``ks_alpha`` ⇒ wide gate:
       only strong evidence of different laws fails).
    2. **CI gate** — the level-``ci_level`` bootstrap confidence
       intervals of the two means overlap (deterministically seeded
       resampling).

    ``label`` names the comparison in failure messages.
    """
    a = np.asarray(samples_a, dtype=float)
    b = np.asarray(samples_b, dtype=float)
    tag = f" [{label}]" if label else ""
    stat = ks_statistic(a, b)
    crit = ks_critical_value(a.size, b.size, ks_alpha)
    assert stat <= crit, (
        f"KS gate failed{tag}: D={stat:.4f} > critical {crit:.4f} "
        f"(n={a.size}, m={b.size}, alpha={ks_alpha}); "
        f"means {a.mean():.4g} vs {b.mean():.4g}"
    )
    rng = np.random.default_rng(_BOOTSTRAP_SEED)
    ci_a = bootstrap_mean_ci(a, confidence=ci_level, resamples=resamples, rng=rng)
    ci_b = bootstrap_mean_ci(b, confidence=ci_level, resamples=resamples, rng=rng)
    assert ci_a.lower <= ci_b.upper and ci_b.lower <= ci_a.upper, (
        f"bootstrap-CI gate failed{tag}: "
        f"[{ci_a.lower:.4g}, {ci_a.upper:.4g}] vs "
        f"[{ci_b.lower:.4g}, {ci_b.upper:.4g}] "
        f"do not overlap at level {ci_level}"
    )


def assert_within(value: float, target: float, *, abs_tol: float, label: str = "") -> None:
    """Assert ``value`` lies within ``abs_tol`` of ``target``."""
    tag = f" [{label}]" if label else ""
    assert abs(value - target) <= abs_tol, (
        f"value gate failed{tag}: {value:.4g} is not within "
        f"±{abs_tol:g} of {target:g}"
    )


def assert_le_with_slack(
    value: float, bound: float, *, slack: float, label: str = ""
) -> None:
    """Assert the noisy ordering ``value <= bound + slack``."""
    tag = f" [{label}]" if label else ""
    assert value <= bound + slack, (
        f"ordering gate failed{tag}: {value:.4g} > {bound:.4g} + slack {slack:g}"
    )


def assert_ge_with_slack(
    value: float, bound: float, *, slack: float, label: str = ""
) -> None:
    """Assert the noisy ordering ``value >= bound - slack``."""
    tag = f" [{label}]" if label else ""
    assert value >= bound - slack, (
        f"ordering gate failed{tag}: {value:.4g} < {bound:.4g} - slack {slack:g}"
    )
