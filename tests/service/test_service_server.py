"""The service's RPC surface: HTTP endpoints, binary frames, dispatch."""

from __future__ import annotations

import json
import socket

import pytest

from repro.service import (
    EstimationService,
    ServiceClient,
    ServiceConfig,
    ServiceServer,
    recv_frame,
    send_frame,
)
from repro.service.server import _dispatch

from test_service_core import FakeClock, canonical, small_config


@pytest.fixture
def service() -> EstimationService:
    return EstimationService(small_config())


@pytest.fixture
def client(service):
    with ServiceServer(service) as server:
        yield ServiceClient(server.address)


class TestHTTP:
    def test_health(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["size"] == 300
        assert health["families"] == ["sample_collide", "aggregation"]

    def test_estimate_round_trip(self, client):
        payload = client.estimate()
        assert payload["round"] == 0
        assert payload["estimates"]["sample_collide"]["value"] > 0

    def test_estimate_family_filter(self, client):
        payload = client.estimate(["sample_collide"])
        assert list(payload["estimates"]) == ["sample_collide"]

    def test_unknown_family_is_404(self, client):
        with pytest.raises(ServiceClient.Error) as exc:
            client.estimate(["hops_sampling"])
        assert exc.value.status == 404
        assert not isinstance(exc.value, ServiceClient.Throttled)

    def test_ingest_tick_estimate_flow(self, client):
        reply = client.ingest([{"joins": 40}])
        assert reply == {"accepted": 1, "dropped": 0}
        assert client.tick(2)["round"] == 2
        assert client.health()["size"] == 340

    def test_bad_ingest_body_is_400(self, client):
        with pytest.raises(ServiceClient.Error) as exc:
            client.ingest([{"frac_leaves": 2.0}])
        assert exc.value.status == 400

    def test_stats_counters_flow_through(self, client):
        client.estimate()
        stats = client.stats()
        assert stats["served"] == 1
        assert stats["ticks"] == 0

    def test_checkpoint_over_http(self, client, tmp_path):
        target = tmp_path / "svc.json"
        reply = client.checkpoint(str(target))
        assert reply["path"] == str(target)
        assert json.loads(target.read_text())["round"] == 0

    def test_throttled_read_raises_throttled(self):
        clock = FakeClock()
        service = EstimationService(small_config(max_qps=1.0), clock=clock)
        with ServiceServer(service) as server:
            client = ServiceClient(server.address)
            client.estimate()
            with pytest.raises(ServiceClient.Throttled) as exc:
                client.estimate()
            assert exc.value.status == 429

    def test_restart_resumes_identically_over_http(self, tmp_path):
        """The acceptance contract, end to end over the RPC surface."""
        target = tmp_path / "svc.json"
        config = small_config()
        witness = EstimationService(config)
        service = EstimationService(config, snapshot_path=str(target))
        with ServiceServer(service) as server:
            client = ServiceClient(server.address)
            client.ingest([{"joins": 10}])
            client.tick(6)
            client.checkpoint()
        witness.ingest([{"joins": 10}])
        witness.tick(6)

        restored = EstimationService.from_checkpoint(str(target))
        with ServiceServer(restored) as server:
            client = ServiceClient(server.address)
            client.ingest([{"frac_leaves": 0.2}])
            client.tick(5)
        witness.ingest([{"frac_leaves": 0.2}])
        witness.tick(5)
        assert canonical(restored) == canonical(witness)


class TestBinary:
    def test_many_requests_per_connection(self, service):
        with ServiceServer(service, binary_port=0) as server:
            host, port = server.binary_address.split(":")
            with socket.create_connection((host, int(port)), timeout=5) as conn:
                send_frame(conn, {"op": "health"})
                reply = recv_frame(conn)
                assert reply["status"] == 200
                assert reply["size"] == 300
                send_frame(conn, {"op": "ingest", "events": [{"joins": 5}]})
                assert recv_frame(conn)["accepted"] == 1
                send_frame(conn, {"op": "tick"})
                assert recv_frame(conn)["round"] == 1
                send_frame(conn, {"op": "estimate", "families": "sample_collide"})
                reply = recv_frame(conn)
                assert reply["status"] == 200
                assert list(reply["estimates"]) == ["sample_collide"]
                send_frame(conn, {"op": "nope"})
                assert recv_frame(conn)["status"] == 404

    def test_frames_are_json_not_pickle(self, service):
        with ServiceServer(service, binary_port=0) as server:
            host, port = server.binary_address.split(":")
            with socket.create_connection((host, int(port)), timeout=5) as conn:
                send_frame(conn, {"op": "health"})
                recv_frame(conn)  # drain so the payload below is framed fresh
                send_frame(conn, {"op": "stats"})
                header = conn.recv(8, socket.MSG_WAITALL)
                length = int.from_bytes(header, "big")
                body = b""
                while len(body) < length:
                    body += conn.recv(length - len(body))
                json.loads(body.decode("utf-8"))  # must parse as plain JSON


class TestDispatch:
    def test_status_codes(self, service):
        assert _dispatch(service, "health", {})[0] == 200
        assert _dispatch(service, "estimate", {"families": "bogus"})[0] == 404
        assert _dispatch(service, "ingest", {"events": "nope"})[0] == 400
        assert _dispatch(service, "tick", {"rounds": 0})[0] == 400
        assert _dispatch(service, "tick", {"rounds": "x"})[0] == 400
        assert _dispatch(service, "checkpoint", {})[0] == 400  # no path configured
        assert _dispatch(service, "missing", {})[0] == 404

    def test_throttled_is_429_on_both_transports(self):
        clock = FakeClock()
        service = EstimationService(small_config(max_qps=1.0), clock=clock)
        assert _dispatch(service, "estimate", {})[0] == 200
        status, payload = _dispatch(service, "estimate", {})
        assert status == 429
        assert payload["error"] == "throttled"
