"""The always-on estimation service: lifecycle, admission, checkpoints.

The acceptance contract of docs/SERVICE.md: a service killed mid-stream
and restored from its last checkpoint is **bit-identical** (canonical
JSON snapshot equality) to an uninterrupted run at the same round, given
the same post-restore event stream.
"""

from __future__ import annotations

import json

import pytest

from repro.runtime import JournalReporter, TelemetryCollector
from repro.analysis.obs_report import read_journal, validate_journal
from repro.service import (
    SERVICE_FAMILIES,
    SERVICE_SCHEMA_VERSION,
    EstimationService,
    ServiceConfig,
    TokenBucket,
)


def small_config(**overrides):
    """A config small enough that boot + probes stay in milliseconds."""
    base = dict(
        seed=11,
        initial_size=300,
        estimators=("sample_collide", "aggregation"),
        probe_interval=5,
        sc_l=10,
        sc_timer=5.0,
        agg_restart_interval=10,
    )
    base.update(overrides)
    return ServiceConfig(**base)


def canonical(service: EstimationService) -> str:
    return json.dumps(service.snapshot(), sort_keys=True)


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(2.0, clock=clock)
        assert [bucket.allow() for _ in range(5)] == [True, True, False, False, False]
        clock.now += 1.0  # one second refills rate=2 tokens
        assert [bucket.allow() for _ in range(3)] == [True, True, False]

    def test_zero_rate_is_unlimited(self):
        bucket = TokenBucket(0.0, clock=FakeClock())
        assert all(bucket.allow() for _ in range(100))

    def test_burst_caps_the_bucket(self):
        clock = FakeClock()
        bucket = TokenBucket(100.0, burst=1.0, clock=clock)
        clock.now += 60.0  # refill far past capacity
        assert bucket.allow()
        assert not bucket.allow()

    def test_nonpositive_burst_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(5.0, burst=0.0)


class TestServiceConfig:
    def test_families_are_validated(self):
        with pytest.raises(ValueError):
            ServiceConfig(estimators=("sample_collide", "bogus"))
        with pytest.raises(ValueError):
            ServiceConfig(estimators=())
        with pytest.raises(ValueError):
            ServiceConfig(estimators=("aggregation", "aggregation"))

    def test_every_known_family_is_constructible(self):
        assert ServiceConfig(estimators=SERVICE_FAMILIES).estimators == SERVICE_FAMILIES

    def test_knob_bounds(self):
        for kwargs in (
            {"initial_size": 0},
            {"probe_interval": 0},
            {"queue_limit": 0},
            {"max_qps": -1.0},
            {"snapshot_every": -1},
        ):
            with pytest.raises(ValueError):
                ServiceConfig(**kwargs)

    def test_config_round_trips_through_plain_data(self):
        config = small_config(max_qps=25.0, burst=5.0, snapshot_every=10)
        payload = json.loads(json.dumps(config.as_config()))
        assert ServiceConfig.from_config(payload) == config


class TestLifecycle:
    def test_boot_probes_every_family(self):
        service = EstimationService(small_config())
        estimates = service.read_estimates()
        assert set(estimates) == {"sample_collide", "aggregation"}
        # Probe families estimate at boot; aggregation needs a full epoch.
        assert estimates["sample_collide"]["value"] is not None
        assert estimates["sample_collide"]["staleness"] == 0
        assert estimates["aggregation"]["value"] is None
        assert estimates["aggregation"]["staleness"] is None

    def test_health_reports_round_size_and_queue(self):
        service = EstimationService(small_config())
        health = service.health()
        assert health["status"] == "ok"
        assert health["round"] == 0
        assert health["size"] == 300
        assert health["queued"] == 0
        service.ingest([{"joins": 5}])
        assert service.health()["queued"] == 1

    def test_ingested_events_apply_at_the_next_tick(self):
        service = EstimationService(small_config())
        service.ingest([{"joins": 50}])
        assert service.graph.size == 300  # queued, not yet applied
        service.tick()
        assert service.graph.size == 350
        assert service.health()["queued"] == 0

    def test_staleness_sawtooths_with_the_probe_interval(self):
        service = EstimationService(small_config())
        for expected in (1, 2, 3, 4, 0):
            service.tick()
            entry = service.read_estimates(["sample_collide"])["sample_collide"]
            assert entry["staleness"] == expected

    def test_aggregation_commits_at_epoch_boundaries(self):
        service = EstimationService(small_config())
        service.tick(10)
        assert service.read_estimates()["aggregation"]["value"] is None
        service.tick()  # round 11 closes the first restart_interval=10 epoch
        entry = service.read_estimates()["aggregation"]
        assert entry["value"] is not None and entry["value"] > 0
        assert entry["round"] == 11
        # The committed estimate then *holds* until the next epoch closes.
        service.tick(9)
        assert service.read_estimates()["aggregation"]["round"] == 11

    def test_unknown_family_raises_key_error(self):
        service = EstimationService(small_config())
        with pytest.raises(KeyError):
            service.read_estimates(["hops_sampling"])

    def test_invalid_ingest_event_rejected(self):
        service = EstimationService(small_config())
        with pytest.raises(ValueError):
            service.ingest([{"frac_leaves": 1.5}])


class TestAdmission:
    def test_estimate_throttles_beyond_max_qps(self):
        clock = FakeClock()
        service = EstimationService(small_config(max_qps=2.0), clock=clock)
        verdicts = [service.serve_estimate()[0] for _ in range(4)]
        assert verdicts == [True, True, False, False]
        _, payload = service.serve_estimate()
        assert payload["error"] == "throttled"
        clock.now += 1.0
        assert service.serve_estimate()[0]
        stats = service.stats_dict()
        assert stats["served"] == 3
        assert stats["throttled"] == 3

    def test_bounded_queue_sheds_and_reports(self):
        telemetry = TelemetryCollector()
        service = EstimationService(
            small_config(queue_limit=3), progress=telemetry
        )
        accepted, dropped = service.ingest([{"joins": 1}] * 5)
        assert (accepted, dropped) == (3, 2)
        stats = service.stats_dict()
        assert stats["ingest_accepted"] == 3
        assert stats["ingest_dropped"] == 2
        events = [e for e in telemetry.events if e["event"] == "ingest_dropped"]
        assert events == [{"event": "ingest_dropped", "dropped": 2, "queued": 3}]


class TestCheckpointRestore:
    def test_restore_is_bit_identical_to_uninterrupted(self, tmp_path):
        """Kill/restore vs. uninterrupted: canonical snapshots must match."""
        target = tmp_path / "svc.json"
        config = small_config()
        witness = EstimationService(config)
        service = EstimationService(config, snapshot_path=str(target))
        assert canonical(witness) == canonical(service)

        stream = [
            ([{"joins": 20}], 3),
            ([{"frac_leaves": 0.1}], 4),
            ([], 5),
        ]
        for events, rounds in stream[:2]:
            for live in (witness, service):
                live.ingest(events)
                live.tick(rounds)
        # Pending (queued, undrained) events must survive the checkpoint.
        for live in (witness, service):
            live.ingest([{"leaves": 7}])
        service.checkpoint()
        restored = EstimationService.from_checkpoint(str(target))

        events, rounds = stream[2]
        for live in (witness, restored):
            live.ingest(events)
            live.tick(rounds)
        assert restored.round == witness.round
        assert canonical(restored) == canonical(witness)
        assert restored.graph.size == witness.graph.size
        assert restored.read_estimates() == witness.read_estimates()

    def test_snapshot_payload_is_pure_json_data(self):
        service = EstimationService(small_config())
        service.tick(3)
        payload = service.snapshot()
        assert payload["schema"] == SERVICE_SCHEMA_VERSION
        rebuilt = EstimationService.from_snapshot(
            json.loads(json.dumps(payload))
        )
        assert canonical(rebuilt) == json.dumps(payload, sort_keys=True)

    def test_unsupported_schema_rejected(self):
        service = EstimationService(small_config())
        payload = dict(service.snapshot(), schema=999)
        with pytest.raises(ValueError):
            EstimationService.from_snapshot(payload)

    def test_periodic_checkpoints_on_the_snapshot_every_boundary(self, tmp_path):
        target = tmp_path / "auto.json"
        service = EstimationService(
            small_config(snapshot_every=4), snapshot_path=str(target)
        )
        service.tick(3)
        assert not target.exists()
        service.tick()
        assert target.exists()
        assert service.stats_dict()["checkpoints"] == 1

    def test_checkpoint_without_path_is_an_error(self):
        service = EstimationService(small_config())
        with pytest.raises(ValueError):
            service.checkpoint()


class TestJournal:
    def test_service_journal_validates(self, tmp_path):
        journal_path = tmp_path / "svc.jsonl"
        target = tmp_path / "svc.json"
        with JournalReporter(journal_path) as journal:
            service = EstimationService(
                small_config(queue_limit=2, snapshot_every=2),
                progress=journal,
                snapshot_path=str(target),
            )
            service.ingest([{"joins": 1}] * 4)  # 2 shed
            service.tick(2)  # crosses the snapshot_every boundary
            service.serve_estimate()
        events = read_journal(journal_path)
        assert validate_journal(events) == []
        kinds = [e["event"] for e in events]
        for expected in (
            "service_start",
            "ingest_dropped",
            "snapshot_checkpoint",
            "estimate_served",
        ):
            assert expected in kinds
        start = next(e for e in events if e["event"] == "service_start")
        assert start["families"] == ["sample_collide", "aggregation"]
        assert start["size"] == 300
