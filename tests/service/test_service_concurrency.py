"""Checkpoint/restore under concurrent ingest and ticking.

The service's public mutators share one re-entrant lock, so a checkpoint
taken while ingesters and a ticker hammer the service must always be a
*consistent cut*: the file parses, restores, and the restored replica is
deterministic — never a torn mixture of pre- and post-tick state.  The
operational counters must also add up exactly across all writer threads.
"""

from __future__ import annotations

import json
import threading
import time

from repro.service.core import EstimationService, ServiceConfig


def small_config(**overrides):
    base = dict(
        seed=11,
        initial_size=300,
        estimators=("sample_collide", "aggregation"),
        probe_interval=5,
        sc_l=10,
        sc_timer=5.0,
        agg_restart_interval=10,
    )
    base.update(overrides)
    return ServiceConfig(**base)


def canonical(service: EstimationService) -> str:
    return json.dumps(service.snapshot(), sort_keys=True)


class TestConcurrentIngestAndCheckpoint:
    def test_checkpoints_under_fire_always_restore(self, tmp_path):
        service = EstimationService(small_config(queue_limit=500))
        stop = threading.Event()
        errors = []
        sent = [0, 0, 0]

        def ingester(slot):
            count = 0
            while not stop.is_set():
                try:
                    service.ingest([{"joins": 1}, {"leaves": 1}])
                except Exception as exc:  # noqa: BLE001 - recorded for the assert
                    errors.append(exc)
                    return
                count += 2
            sent[slot] = count

        def ticker():
            while not stop.is_set():
                try:
                    service.tick()
                except Exception as exc:  # noqa: BLE001 - recorded for the assert
                    errors.append(exc)
                    return
                time.sleep(0.001)

        writers = [
            threading.Thread(target=ingester, args=(slot,), daemon=True)
            for slot in range(len(sent))
        ] + [threading.Thread(target=ticker, daemon=True)]
        for thread in writers:
            thread.start()
        try:
            for i in range(10):
                path = tmp_path / f"ckpt-{i}.json"
                service.checkpoint(str(path))
                restored = EstimationService.from_checkpoint(str(path))
                payload = json.loads(path.read_text())
                # The cut is internally consistent: the restored replica
                # reports exactly the captured round and pending queue.
                assert restored.round == payload["round"]
                assert len(restored._queue) == len(payload["pending"])
                time.sleep(0.01)
        finally:
            stop.set()
            for thread in writers:
                thread.join(timeout=10.0)
        assert errors == []

        # Writer accounting adds up exactly: nothing double-counted or
        # lost across three ingesters racing a ticker and checkpoints.
        status = service.stats_dict()
        assert status["ingest_accepted"] + status["ingest_dropped"] == sum(sent)
        assert status["checkpoints"] == 10

    def test_restored_replicas_of_one_cut_are_deterministic(self, tmp_path):
        service = EstimationService(small_config(queue_limit=500))
        stop = threading.Event()
        errors = []

        def churn():
            while not stop.is_set():
                try:
                    service.ingest([{"frac_joins": 0.01}])
                    service.tick()
                except Exception as exc:  # noqa: BLE001 - recorded for the assert
                    errors.append(exc)
                    return

        writer = threading.Thread(target=churn, daemon=True)
        writer.start()
        try:
            path = tmp_path / "cut.json"
            time.sleep(0.05)
            service.checkpoint(str(path))
        finally:
            stop.set()
            writer.join(timeout=10.0)
        assert errors == []

        # Two replicas of the same mid-fire cut must evolve identically:
        # if the checkpoint were torn, their futures would diverge.
        a = EstimationService.from_checkpoint(str(path))
        b = EstimationService.from_checkpoint(str(path))
        assert canonical(a) == canonical(b)
        a.tick(3)
        b.tick(3)
        assert canonical(a) == canonical(b)
        assert a.read_estimates() == b.read_estimates()
