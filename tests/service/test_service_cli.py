"""CLI surface of the estimation service: `repro-experiment serve`."""

from __future__ import annotations

import json
import re

import pytest

from repro.analysis.obs_report import read_journal, validate_journal
from repro.experiments.cli import build_parser, main


class TestParsing:
    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.bind == "127.0.0.1:0"
        assert args.binary_bind is None
        assert args.estimators == "sample_collide,aggregation"
        assert args.nodes == 2000
        assert args.max_qps == 0.0
        assert args.snapshot is None
        assert args.snapshot_every == 0
        assert args.tick_interval == 0.0
        assert args.rounds == 0

    def test_malformed_bind_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--bind", "nodeport"])
        assert exc.value.code == 2
        assert "host" in capsys.readouterr().err

    def test_unknown_family_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--estimators", "bogus"])
        assert exc.value.code == 2
        assert "bogus" in capsys.readouterr().err

    def test_snapshot_every_needs_snapshot(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--snapshot-every", "10"])
        assert exc.value.code == 2
        assert "--snapshot" in capsys.readouterr().err

    def test_binary_bind_must_share_the_host(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--bind", "127.0.0.1:0",
                  "--binary-bind", "0.0.0.0:0"])
        assert exc.value.code == 2
        assert "same host" in capsys.readouterr().err

    def test_serve_is_not_rewritten_as_legacy_target(self, capsys):
        # "serve" leads the argv, so the bare-target rewrite must leave it
        # alone instead of prepending "run".
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--no-such-flag"])
        assert exc.value.code == 2
        assert "usage" in capsys.readouterr().err


class TestServeSmoke:
    def test_bounded_run_prints_machine_parsable_address(self, capsys, tmp_path):
        journal_path = tmp_path / "svc.jsonl"
        snapshot_path = tmp_path / "svc.json"
        assert main([
            "serve", "--bind", "127.0.0.1:0",
            "--nodes", "200", "--estimators", "sample_collide",
            "--tick-interval", "0.001", "--rounds", "6",
            "--snapshot", str(snapshot_path), "--snapshot-every", "3",
            "--journal", str(journal_path),
        ]) == 0
        out = capsys.readouterr().out
        match = re.search(r"^REPRO_SERVICE_ADDR=127\.0\.0\.1:(\d+)$", out, re.M)
        assert match, out
        assert int(match.group(1)) > 0  # port 0 resolved to the chosen port
        assert "service listening on 127.0.0.1:" in out

        # The bounded ticker crossed two snapshot_every=3 boundaries.
        assert json.loads(snapshot_path.read_text())["round"] == 6
        events = read_journal(journal_path)
        assert validate_journal(events) == []
        kinds = [e["event"] for e in events]
        assert "service_start" in kinds
        assert kinds.count("snapshot_checkpoint") == 2

    def test_restart_restores_from_the_snapshot(self, capsys, tmp_path):
        snapshot_path = tmp_path / "svc.json"
        base = [
            "serve", "--bind", "127.0.0.1:0",
            "--nodes", "200", "--estimators", "sample_collide",
            "--tick-interval", "0.001", "--snapshot", str(snapshot_path),
        ]
        assert main(base + ["--rounds", "4", "--snapshot-every", "4"]) == 0
        capsys.readouterr()
        # Second invocation finds the checkpoint and resumes past it (the
        # checkpoint's own config governs, including snapshot_every=4).
        assert main(base + ["--rounds", "8", "--snapshot-every", "4"]) == 0
        out = capsys.readouterr().out
        assert f"service restored from {snapshot_path} (round 4" in out
        assert json.loads(snapshot_path.read_text())["round"] == 8

    def test_binary_address_line(self, capsys, tmp_path):
        assert main([
            "serve", "--bind", "127.0.0.1:0", "--binary-bind", "127.0.0.1:0",
            "--nodes", "200", "--estimators", "sample_collide",
            "--tick-interval", "0.001", "--rounds", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert re.search(r"^REPRO_SERVICE_BINARY_ADDR=127\.0\.0\.1:\d+$", out, re.M)


class TestWorkerAddrLine:
    def test_worker_serve_prints_machine_parsable_address(self, capsys):
        assert main(["worker", "serve", "--bind", "127.0.0.1:0",
                     "--max-sessions", "0"]) == 0
        out = capsys.readouterr().out
        match = re.search(r"^REPRO_WORKER_ADDR=127\.0\.0\.1:(\d+)$", out, re.M)
        assert match, out
        assert int(match.group(1)) > 0
