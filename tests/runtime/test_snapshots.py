"""Snapshot protocol: equivalence properties and chunk-boundary bit-identity.

Two layers of guarantees (docs/SNAPSHOTS.md):

* **component equivalence** — for every stateful component,
  ``snapshot() + restore() + advance`` produces bit-identical behaviour to
  an uninterrupted ``advance``;
* **batch bit-identity** — every churn-replay trial kind produces the same
  results at workers 1 and 4, with snapshot hand-off on or off, cold or
  warm cache.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.churn.models import catastrophic_trace, shrinking_trace
from repro.churn.scheduler import ChurnScheduler
from repro.core.aggregation import AggregationMonitor, AggregationProtocol
from repro.overlay.builders import heterogeneous_random
from repro.overlay.graph import OverlayGraph
from repro.overlay.membership import MembershipPolicy
from repro.overlay.repair import RepairPolicySpec
from repro.runtime import (
    EstimatorSpec,
    OverlaySpec,
    ResultsStore,
    RuntimeOptions,
    TrialSpec,
    run_trials,
    trace_to_payload,
)
from repro.runtime.snapshots import (
    SNAPSHOT_KINDS,
    ProbeReplayState,
    RepairReplayState,
    snapshot_config,
)
from repro.sim.messages import MessageKind, MessageMeter
from repro.sim.rng import RngHub, generator_from_state, generator_state
from repro.sim.rounds import RoundDriver


def assert_results_equal(a, b):
    """Bit-identity of two result lists (NaN == NaN, unlike dict equality)."""
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        da, db = ra.as_dict(), rb.as_dict()
        assert json.dumps(da, sort_keys=True) == json.dumps(db, sort_keys=True)


# ----------------------------------------------------------------------
# component equivalence: snapshot + restore + advance == advance
# ----------------------------------------------------------------------


class TestGeneratorState:
    def test_round_trip_future_draws(self):
        gen = np.random.default_rng(7)
        gen.random(100)
        twin = generator_from_state(generator_state(gen))
        np.testing.assert_array_equal(gen.random(50), twin.random(50))

    def test_state_is_jsonable(self):
        state = generator_state(np.random.default_rng(7))
        assert json.loads(json.dumps(state)) == state


class TestGraphSnapshot:
    def _churned_graph(self):
        hub = RngHub(5)
        g = heterogeneous_random(300, rng=hub.stream("overlay"))
        policy = MembershipPolicy(g, rng=hub.stream("churn"))
        policy.leave(120)
        policy.join(60)
        return g, hub

    def test_snapshot_is_pure_data(self):
        g, _ = self._churned_graph()
        snap = g.snapshot()
        assert json.loads(json.dumps(snap)) == snap

    def test_restore_preserves_structure_and_order(self):
        g, _ = self._churned_graph()
        h = OverlayGraph.restore(g.snapshot())
        assert h.size == g.size and h.num_edges == g.num_edges
        assert list(h) == list(g)  # node iteration order
        for u in g:
            assert list(h.neighbors(u)) == list(g.neighbors(u))
        np.testing.assert_array_equal(h.csr().indices, g.csr().indices)
        h.check_invariants()

    def test_restored_graph_behaves_identically(self):
        """The crux: future mutations + sampling match the live graph's."""
        g, hub = self._churned_graph()
        h = OverlayGraph.restore(g.snapshot())
        rng_a = hub.stream("churn")
        rng_b = generator_from_state(generator_state(rng_a))
        pol_a = MembershipPolicy(g, rng=rng_a)
        pol_b = MembershipPolicy(h, rng=rng_b)
        pol_a.leave(50), pol_b.leave(50)
        pol_a.join(30), pol_b.join(30)
        assert g.snapshot() == h.snapshot()
        view_a, view_b = g.csr(), h.csr()
        np.testing.assert_array_equal(view_a.nodes, view_b.nodes)
        np.testing.assert_array_equal(view_a.indices, view_b.indices)
        draw = np.random.default_rng(3)
        pos = draw.integers(view_a.n, size=64)
        np.testing.assert_array_equal(
            view_a.sample_neighbors(pos, np.random.default_rng(9)),
            view_b.sample_neighbors(pos, np.random.default_rng(9)),
        )

    def test_copy_preserves_order(self):
        g, _ = self._churned_graph()
        assert g.copy().snapshot() == g.snapshot()


class TestHubSnapshot:
    def test_streams_and_fresh_counters_resume(self):
        hub = RngHub(42)
        hub.stream("churn").random(17)
        hub.fresh("proto"), hub.fresh("proto")
        twin = RngHub.restore(hub.snapshot())
        np.testing.assert_array_equal(
            hub.stream("churn").random(20), twin.stream("churn").random(20)
        )
        np.testing.assert_array_equal(
            hub.fresh("proto").random(5), twin.fresh("proto").random(5)
        )
        # a never-consumed stream derives identically on both sides
        np.testing.assert_array_equal(
            hub.stream("other").random(5), twin.stream("other").random(5)
        )

    def test_child_lineage_is_stateless(self):
        hub = RngHub(42)
        snap = hub.snapshot()
        assert (
            RngHub.restore(snap).child("run3").seed == RngHub(42).child("run3").seed
        )


class TestSchedulerSnapshot:
    def test_interrupted_equals_uninterrupted(self):
        def build():
            hub = RngHub(11)
            g = heterogeneous_random(300, rng=hub.stream("overlay"))
            trace = shrinking_trace(300, 0.5, start=1.0, end=20.0, steps=19)
            return hub, ChurnScheduler(g, trace, rng=hub.stream("churn"))

        _, straight = build()
        for t in range(1, 21):
            straight.advance_to(float(t))

        _, interrupted = build()
        for t in range(1, 11):
            interrupted.advance_to(float(t))
        trace = shrinking_trace(300, 0.5, start=1.0, end=20.0, steps=19)
        resumed = ChurnScheduler.restore(interrupted.snapshot(), trace)
        for t in range(11, 21):
            resumed.advance_to(float(t))

        assert resumed.graph.snapshot() == straight.graph.snapshot()
        # the audit log is deliberately not carried across a hand-off
        # (snapshots stay O(overlay)); it covers post-restore events only
        assert resumed.log == straight.log[-resumed.applied_events:]
        assert resumed.snapshot() == straight.snapshot()

    def test_snapshot_is_jsonable(self):
        hub = RngHub(11)
        g = heterogeneous_random(100, rng=hub.stream("overlay"))
        sched = ChurnScheduler(
            g, catastrophic_trace((2.0, 5.0), 0.25, None, 0), rng=hub.stream("churn")
        )
        sched.advance_to(3.0)
        snap = sched.snapshot()
        assert json.loads(json.dumps(snap)) == snap


class TestMeterAndDriver:
    def test_meter_restore(self):
        meter = MessageMeter()
        meter.add(MessageKind.WALK, 7)
        meter.add(MessageKind.CONTROL, 3)
        twin = MessageMeter.restore(meter.snapshot().counts)
        assert twin.total == meter.total
        assert dict(twin.items()) == dict(meter.items())

    def test_driver_start_round(self):
        seen = []
        driver = RoundDriver(start_round=10)
        driver.subscribe(lambda rnd: seen.append(rnd))
        assert driver.run(3) == 3
        assert seen == [11, 12, 13]
        assert driver.current_round == 13

    def test_driver_rejects_negative_start(self):
        with pytest.raises(ValueError):
            RoundDriver(start_round=-1)


class TestAggregationSnapshot:
    def test_protocol_resumes_mid_epoch(self):
        def build():
            hub = RngHub(23)
            g = heterogeneous_random(200, rng=hub.stream("overlay"))
            return AggregationProtocol(g, rng=hub.stream("proto"))

        straight = build()
        straight.start_epoch()
        straight.run_rounds(30)

        interrupted = build()
        interrupted.start_epoch()
        interrupted.run_rounds(12)
        snap = interrupted.snapshot()
        resumed = AggregationProtocol.restore(interrupted.graph, snap)
        resumed.run_rounds(18)

        assert resumed.read().value == straight.read().value
        assert resumed.total_mass() == straight.total_mass()
        assert resumed.epoch == straight.epoch
        assert resumed.rounds_in_epoch == straight.rounds_in_epoch

    def test_monitor_resumes_with_relative_series(self):
        def build():
            hub = RngHub(31)
            g = heterogeneous_random(200, rng=hub.stream("overlay"))
            trace = shrinking_trace(200, 0.4, start=1.0, end=30.0, steps=29)
            sched = ChurnScheduler(g, trace, rng=hub.stream("churn"))
            mon = AggregationMonitor(g, restart_interval=8, rng=hub.stream("monitor"))
            driver = RoundDriver()
            sched.attach(driver)
            mon.attach(driver)
            return sched, mon, driver

        _, mon_a, driver_a = build()
        driver_a.run(30)

        sched_b, mon_b, driver_b = build()
        driver_b.run(14)
        trace = shrinking_trace(200, 0.4, start=1.0, end=30.0, steps=29)
        sched_c = ChurnScheduler.restore(sched_b.snapshot(), trace)
        mon_c = AggregationMonitor.restore(
            sched_c.graph, mon_b.snapshot(), restart_interval=8
        )
        driver_c = RoundDriver(start_round=14)
        sched_c.attach(driver_c)
        mon_c.attach(driver_c)
        driver_c.run(16)

        np.testing.assert_array_equal(
            np.asarray(mon_a.series[14:]), np.asarray(mon_c.series)
        )
        assert mon_c.failures == mon_a.failures
        assert mon_c.epoch_estimates == mon_a.epoch_estimates


class TestReplayStates:
    def _probe_spec(self, kind="multi_probe", seed=99, n=300, count=15):
        trace = shrinking_trace(n, 0.5, start=1.0, end=float(count), steps=count - 1)
        params = {
            "trace": trace_to_payload(trace),
            "time_per_estimation": 1.0,
            "max_degree": 10,
        }
        return TrialSpec(
            kind,
            seed,
            1,
            overlay=OverlaySpec.heterogeneous(n),
            estimator=EstimatorSpec.sample_collide(l=20, timer=5.0),
            params=params,
        )

    def test_probe_state_handoff_equivalence(self):
        spec = self._probe_spec()
        straight = ProbeReplayState.boot(spec)
        straight.advance(15)
        split = ProbeReplayState.boot(spec)
        split.advance(7)
        resumed = ProbeReplayState.restore(spec, split.snapshot())
        resumed.advance(15)
        assert resumed.graph.snapshot() == straight.graph.snapshot()
        assert resumed.scheduler.snapshot() == straight.scheduler.snapshot()
        assert resumed.position == straight.position

    def test_probe_state_death_is_final(self):
        # a -100% trace empties the overlay; the state must freeze there
        n = 50
        trace = shrinking_trace(n, 1.0, start=1.0, end=5.0, steps=5)
        spec = TrialSpec(
            "dynamic_probe",
            7,
            1,
            overlay=OverlaySpec.heterogeneous(n),
            estimator=EstimatorSpec.sample_collide(l=5, timer=2.0),
            params={"trace": trace_to_payload(trace), "time_per_estimation": 1.0},
        )
        state = ProbeReplayState.boot(spec)
        state.advance(10)
        assert state.dead
        death = state.position
        resumed = ProbeReplayState.restore(spec, state.snapshot())
        resumed.advance(20)
        assert resumed.dead and resumed.position == death

    def test_snapshot_config_excludes_estimator(self):
        a = self._probe_spec()
        b = TrialSpec(
            a.kind,
            a.hub_seed,
            a.index,
            overlay=a.overlay,
            estimator=EstimatorSpec.hops_sampling(),
            params=a.params,
        )
        assert snapshot_config(a, 5) == snapshot_config(b, 5)
        assert snapshot_config(a, 5) != snapshot_config(a, 6)

    def test_registry_covers_replay_kinds(self):
        assert set(SNAPSHOT_KINDS) == {"dynamic_probe", "multi_probe", "repair_replay"}
        assert SNAPSHOT_KINDS["repair_replay"] is RepairReplayState


# ----------------------------------------------------------------------
# chunk-boundary bit-identity: all four churn-replay kinds
# ----------------------------------------------------------------------


N = 300
COUNT = 12


def _trace_payload(n=N, count=COUNT):
    return trace_to_payload(
        shrinking_trace(n, 0.5, start=1.0, end=float(count), steps=count - 1)
    )


def _specs(kind):
    overlay = OverlaySpec.heterogeneous(N)
    if kind == "dynamic_probe":
        params = {"trace": _trace_payload(), "time_per_estimation": 1.0, "max_degree": 10}
        return [
            TrialSpec(kind, 17, i, overlay=overlay,
                      estimator=EstimatorSpec.sample_collide(l=20, timer=5.0),
                      params=params)
            for i in range(1, COUNT + 1)
        ]
    if kind == "multi_probe":
        params = {"trace": _trace_payload(), "time_per_estimation": 1.0, "max_degree": 10}
        return [
            TrialSpec(kind, 17, i, overlay=overlay,
                      estimator=EstimatorSpec.hops_sampling(),
                      params=params, stream=k)
            for i in range(1, COUNT + 1)
            for k in range(2)
        ]
    if kind == "repair_replay":
        params = {
            "trace": _trace_payload(),
            "max_degree": 10,
            "repair": RepairPolicySpec.degree().as_config(),
            "restart_interval": 4,
        }
        return [
            TrialSpec(kind, 17, i, overlay=overlay, params=params)
            for i in range(1, COUNT + 1)
        ]
    assert kind == "agg_dynamic"
    params = {
        "trace": _trace_payload(),
        "max_degree": 10,
        "restart_interval": 4,
        "horizon": COUNT,
    }
    return [
        TrialSpec(kind, 17, i, overlay=overlay, params=params) for i in range(3)
    ]


ALL_REPLAY_KINDS = ["dynamic_probe", "multi_probe", "repair_replay", "agg_dynamic"]


class TestChunkBoundaryBitIdentity:
    @pytest.mark.parametrize("kind", ALL_REPLAY_KINDS)
    def test_workers_and_snapshot_modes_match_serial(self, kind):
        specs = _specs(kind)
        serial = run_trials(specs, runtime=RuntimeOptions(workers=1))
        with_snap = run_trials(
            specs, runtime=RuntimeOptions(workers=4, chunk_size=3)
        )
        without_snap = run_trials(
            specs, runtime=RuntimeOptions(workers=4, chunk_size=3, snapshots=False)
        )
        assert_results_equal(serial, with_snap)
        assert_results_equal(serial, without_snap)

    @pytest.mark.parametrize("kind", ALL_REPLAY_KINDS)
    def test_warm_cache_matches_serial(self, kind, tmp_path):
        specs = _specs(kind)
        serial = run_trials(specs, runtime=RuntimeOptions(workers=1))
        store = ResultsStore(tmp_path)
        cold = run_trials(
            specs, runtime=RuntimeOptions(workers=4, chunk_size=3, store=store)
        )
        warm = run_trials(
            specs, runtime=RuntimeOptions(workers=4, chunk_size=3, store=store)
        )
        assert_results_equal(serial, cold)
        assert_results_equal(serial, warm)

    def test_snapshots_do_not_change_result_addresses(self, tmp_path):
        """Result artifacts land at the same key with snapshots on or off."""
        specs = _specs("multi_probe")
        store_a, store_b = ResultsStore(tmp_path / "a"), ResultsStore(tmp_path / "b")
        run_trials(specs, runtime=RuntimeOptions(workers=4, chunk_size=3, store=store_a))
        run_trials(
            specs,
            runtime=RuntimeOptions(
                workers=4, chunk_size=3, store=store_b, snapshots=False
            ),
        )
        results_a = {i.key for i in store_a.artifacts() if i.payload == "results"}
        results_b = {i.key for i in store_b.artifacts() if i.payload == "results"}
        assert results_a == results_b

    def test_snapshot_artifacts_are_shared_across_estimators(self, tmp_path):
        """Same scenario + different estimator -> snapshot cache hits."""
        store = ResultsStore(tmp_path)
        specs_sc = _specs("multi_probe")
        run_trials(specs_sc, runtime=RuntimeOptions(workers=4, chunk_size=3, store=store))
        snaps_before = {
            i.key for i in store.artifacts() if i.payload == "snapshot"
        }
        assert snaps_before  # the backbone cached its boundaries
        specs_other = [
            TrialSpec(
                s.kind,
                s.hub_seed,
                s.index,
                overlay=s.overlay,
                estimator=EstimatorSpec.sample_collide(l=10, timer=4.0),
                params=s.params,
                stream=s.stream,
            )
            for s in specs_sc
        ]
        run_trials(
            specs_other, runtime=RuntimeOptions(workers=4, chunk_size=3, store=store)
        )
        snaps_after = {i.key for i in store.artifacts() if i.payload == "snapshot"}
        assert snaps_after == snaps_before


# ----------------------------------------------------------------------
# store integration
# ----------------------------------------------------------------------


class TestSnapshotStore:
    def test_save_load_round_trip_with_nan(self, tmp_path):
        store = ResultsStore(tmp_path)
        config = {"snapshot": 1, "kind": "repair_replay", "index": 3}
        payload = {"index": 3, "hold": float("nan"), "values": [1.0, 2.5]}
        store.save_snapshot(config, payload)
        loaded = store.load_snapshot(config)
        assert loaded["index"] == 3 and loaded["values"] == [1.0, 2.5]
        assert math.isnan(loaded["hold"])

    def test_load_snapshot_misses_on_results_artifact(self, tmp_path):
        store = ResultsStore(tmp_path)
        assert store.load_snapshot({"snapshot": 1, "missing": True}) is None

    def test_stats_report_snapshot_bytes_separately(self, tmp_path):
        store = ResultsStore(tmp_path)
        specs = _specs("multi_probe")
        run_trials(specs, runtime=RuntimeOptions(workers=4, chunk_size=3, store=store))
        st = store.stats()
        assert st.snapshot_artifacts > 0
        assert 0 < st.snapshot_bytes < st.total_bytes
        infos = store.artifacts()
        assert {i.payload for i in infos} == {"results", "snapshot"}
        for info in infos:
            if info.payload == "snapshot":
                assert info.tag == "snapshot:multi_probe"

    def test_trends_scan_skips_snapshots(self, tmp_path):
        from repro.runtime.trends import scan_stores

        store = ResultsStore(tmp_path)
        specs = _specs("multi_probe")
        run_trials(
            specs,
            runtime=RuntimeOptions(workers=4, chunk_size=3, store=store, tag="figX"),
        )
        records = scan_stores([tmp_path])
        assert records  # the results artifact is seen
        assert all(r.info.payload == "results" for r in records)

    def test_gc_reclaims_snapshots(self, tmp_path):
        store = ResultsStore(tmp_path)
        specs = _specs("multi_probe")
        run_trials(specs, runtime=RuntimeOptions(workers=4, chunk_size=3, store=store))
        report = store.gc(max_total_bytes=0)
        assert report.kept == 0
        assert store.stats().snapshot_artifacts == 0
