"""Serial-vs-parallel determinism at the figure level.

The acceptance bar for the runtime: the same figure regenerated with any
worker count — or served from the results store — is numerically identical,
curve by curve, to the serial run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.dynamic import fig09_sc_catastrophic, fig15_agg_failures
from repro.experiments.scale_free_exp import fig08_scale_free_comparison
from repro.experiments.static import fig01_sample_collide_100k, fig05_aggregation_100k
from repro.runtime import ResultsStore, RuntimeOptions, TelemetryCollector


def _assert_figures_equal(a, b):
    assert [c.label for c in a.curves] == [c.label for c in b.curves]
    for ca, cb in zip(a.curves, b.curves):
        np.testing.assert_array_equal(ca.x, cb.x)
        np.testing.assert_array_equal(ca.y, cb.y)


@pytest.mark.parametrize(
    "figure",
    [
        fig01_sample_collide_100k,  # static_probe kind
        fig05_aggregation_100k,  # agg_convergence kind
        fig08_scale_free_comparison,  # static_probe + agg_epoch, shared overlay
        fig09_sc_catastrophic,  # multi_probe kind (churn replay)
        fig15_agg_failures,  # agg_dynamic kind
    ],
)
def test_parallel_matches_serial(figure, tiny_scale):
    serial = figure(scale=tiny_scale, seed=123)
    parallel = figure(
        scale=tiny_scale,
        seed=123,
        runtime=RuntimeOptions(workers=2, chunk_size=2),
    )
    _assert_figures_equal(serial, parallel)


def test_cached_rerun_matches_and_skips_execution(tiny_scale, tmp_path):
    store = ResultsStore(tmp_path)
    first = fig01_sample_collide_100k(
        scale=tiny_scale, seed=123, runtime=RuntimeOptions(store=store)
    )
    telemetry = TelemetryCollector()
    second = fig01_sample_collide_100k(
        scale=tiny_scale,
        seed=123,
        runtime=RuntimeOptions(store=store, progress=telemetry),
    )
    _assert_figures_equal(first, second)
    assert telemetry.count("cache_hit") == 1
    assert telemetry.count("start") == 0  # nothing executed

    # a different seed is a different content address, not a stale hit
    third = fig01_sample_collide_100k(
        scale=tiny_scale, seed=124, runtime=RuntimeOptions(store=store)
    )
    with pytest.raises(AssertionError):
        _assert_figures_equal(first, third)
