"""Tests for the content-addressed results store."""

from __future__ import annotations

import json
import math

import pytest

from repro.runtime.store import (
    SCHEMA_VERSION,
    ResultsStore,
    canonical_json,
    content_key,
)
from repro.runtime.trials import TrialResult


class TestCanonicalJson:
    def test_key_order_irrelevant(self):
        assert canonical_json({"a": 1, "b": 2}) == canonical_json({"b": 2, "a": 1})

    def test_tuples_and_lists_equal(self):
        assert canonical_json({"x": (1, 2)}) == canonical_json({"x": [1, 2]})

    def test_nested_sorting(self):
        a = {"outer": {"z": 1, "a": {"k": [1, 2]}}}
        b = {"outer": {"a": {"k": [1, 2]}, "z": 1}}
        assert content_key(a) == content_key(b)

    def test_value_changes_key(self):
        assert content_key({"l": 200}) != content_key({"l": 10})

    def test_rejects_non_jsonable(self):
        with pytest.raises(TypeError):
            canonical_json({"fn": lambda: None})


class TestStoreRoundTrip:
    def _results(self):
        return [
            TrialResult(index=1, value=412.5, true_size=400.0),
            TrialResult(index=2, value=float("nan"), true_size=399.0),
            TrialResult(index=3, value=388.0, true_size=398.0, stream=2),
            TrialResult(
                index=0,
                value=95.0,
                true_size=100.0,
                extra={"quality": [10.0, 50.0, 95.0]},
            ),
        ]

    def test_save_load(self, tmp_path):
        store = ResultsStore(tmp_path)
        config = {"kind": "static_probe", "hub_seed": 7, "indices": [1, 2, 3]}
        store.save(config, self._results())
        loaded = store.load(config)
        assert loaded is not None
        assert len(loaded) == 4
        assert loaded[0].value == 412.5
        assert math.isnan(loaded[1].value)
        assert loaded[2].stream == 2
        assert loaded[3].extra == {"quality": [10.0, 50.0, 95.0]}

    def test_artifact_is_strict_json(self, tmp_path):
        """NaN results must not leak bare ``NaN`` literals into the file:
        artifacts are consumed by non-Python tooling too."""
        store = ResultsStore(tmp_path)
        config = {"kind": "x"}
        path = store.save(config, self._results())
        json.loads(
            path.read_text(),
            parse_constant=lambda token: pytest.fail(
                f"non-standard JSON literal {token!r} in artifact"
            ),
        )
        loaded = store.load(config)
        assert math.isnan(loaded[1].value)

    def test_miss_returns_none(self, tmp_path):
        assert ResultsStore(tmp_path).load({"kind": "nope"}) is None

    def test_different_config_different_artifact(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.save({"l": 200}, self._results())
        assert store.load({"l": 10}) is None
        assert len(store) == 1

    def test_invalidate(self, tmp_path):
        store = ResultsStore(tmp_path)
        config = {"kind": "x"}
        store.save(config, self._results())
        assert store.contains(config)
        assert store.invalidate(config) is True
        assert store.load(config) is None
        assert store.invalidate(config) is False

    def test_clear(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.save({"a": 1}, self._results())
        store.save({"a": 2}, self._results())
        assert store.clear() == 2
        assert len(store) == 0

    def test_schema_mismatch_is_miss(self, tmp_path):
        store = ResultsStore(tmp_path)
        config = {"kind": "x"}
        path = store.save(config, self._results())
        artifact = json.loads(path.read_text())
        artifact["schema"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(artifact))
        assert store.load(config) is None

    def test_corrupt_artifact_is_miss(self, tmp_path):
        store = ResultsStore(tmp_path)
        config = {"kind": "x"}
        path = store.save(config, self._results())
        path.write_text("{not json")
        assert store.load(config) is None
