"""Spin-up helpers for the cluster chaos suite.

The declarative half of the harness lives in ``repro.runtime.faults``
(:class:`FaultPlan` and friends); this module is the runtime half used by
``tests/runtime/test_chaos.py`` and the CI ``chaos`` job: it boots a
loopback cluster whose workers carry a plan's compiled faults, drives a
batch through :class:`~repro.runtime.cluster.ClusterExecutor` under a
tight heartbeat, and checks the invariants every chaos run must uphold —
results bit-identical to serial, content addresses unchanged, every
chunk accounted for exactly once, and (when journalled) a timeline
``obs validate`` accepts.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.obs_report import read_journal, validate_journal
from repro.runtime import (
    ClusterExecutor,
    JournalReporter,
    TelemetryCollector,
    WorkerServer,
)
from repro.runtime.faults import FaultPlan
from repro.runtime.progress import TeeProgress
from repro.runtime.store import content_key


class TimedTelemetry(TelemetryCollector):
    """Telemetry that stamps ``time.monotonic()`` on every event.

    Chaos tests reason about *when* recovery happened relative to the
    injected cause (e.g. the heartbeat detection bound), which the plain
    collector cannot answer.  The stamp is stored under ``"at"`` — no
    progress callback uses that field name.
    """

    def _record(self, event: str, **data: Any) -> None:
        super()._record(event, at=time.monotonic(), **data)

    def at(self, kind: str) -> Optional[float]:
        """Monotonic stamp of the first event of ``kind`` (None if absent)."""
        for ev in self.events:
            if ev["event"] == kind:
                return ev["at"]
        return None


@dataclass
class ChaosRun:
    """Everything a chaos test needs to assert on after one run."""

    plan: FaultPlan
    results: List[Any]
    telemetry: TimedTelemetry
    hosts: List[str] = field(default_factory=list)
    journal: List[Dict[str, Any]] = field(default_factory=list)

    def host_address(self, index: int) -> str:
        """The bound address of the plan's worker ``index``."""
        return self.hosts[index]

    def events(self, kind: str) -> List[Dict[str, Any]]:
        """All telemetry events of ``kind``, in emission order."""
        return [e for e in self.telemetry.events if e["event"] == kind]


def results_key(results: Sequence[Any]) -> str:
    """Content address of a result list (order-sensitive, bit-exact)."""
    return content_key([r.as_dict() for r in results])


def run_chaos(
    plan: FaultPlan,
    specs: Sequence[Any],
    *,
    hosts: int = 2,
    chunk_size: Optional[int] = 3,
    heartbeat_interval: float = 0.05,
    heartbeat_misses: int = 2,
    retries: int = 0,
    backoff: float = 0.05,
    journal_path: Optional[Any] = None,
    timeout: float = 60.0,
) -> ChaosRun:
    """Run ``specs`` through a loopback cluster carrying ``plan``'s faults.

    Each of the ``hosts`` workers gets the plan's compiled
    :meth:`~repro.runtime.faults.FaultPlan.worker_faults` for its index
    and reports injected faults into the shared telemetry (and journal,
    when ``journal_path`` is given).  ``retries=0`` by default so a
    transport fault converts to a loss immediately instead of racing the
    backoff against healthy peers draining the queue.
    """
    telemetry = TimedTelemetry()
    reporters = [telemetry]
    journal: Optional[JournalReporter] = None
    if journal_path is not None:
        journal = JournalReporter(journal_path)
        reporters.append(journal)
    progress = TeeProgress(reporters)

    servers = [
        WorkerServer(faults=plan.worker_faults(i), progress=progress)
        for i in range(hosts)
    ]
    threads = [
        threading.Thread(target=s.serve_forever, daemon=True) for s in servers
    ]
    for thread in threads:
        thread.start()
    addresses = [s.address for s in servers]
    try:
        executor = ClusterExecutor(
            addresses,
            chunk_size=chunk_size,
            progress=progress,
            retries=retries,
            backoff=backoff,
            heartbeat_interval=heartbeat_interval,
            heartbeat_misses=heartbeat_misses,
        )
        box: Dict[str, Any] = {}

        def drive() -> None:
            try:
                box["results"] = executor.run(list(specs))
            except BaseException as exc:  # surfaced below, not swallowed
                box["error"] = exc

        driver = threading.Thread(target=drive, daemon=True)
        driver.start()
        driver.join(timeout=timeout)
        if driver.is_alive():
            raise AssertionError(
                f"chaos run {plan.describe()!r} hung past {timeout}s"
            )
        if "error" in box:
            raise box["error"]
    finally:
        for server in servers:
            server.close()
        for thread in threads:
            thread.join(timeout=5.0)
        if journal is not None:
            journal.close()

    events: List[Dict[str, Any]] = []
    if journal_path is not None:
        events = read_journal(journal_path)
    return ChaosRun(
        plan=plan,
        results=box["results"],
        telemetry=telemetry,
        hosts=addresses,
        journal=events,
    )


def assert_chaos_invariants(run: ChaosRun, serial: Sequence[Any]) -> None:
    """The invariants every fault plan must leave intact.

    1. Results bit-identical to the serial reference (NaN-safe).
    2. The content address of the result list is unchanged — faults move
       work around, they never change what it computes.
    3. Every chunk is announced exactly once and completed exactly once,
       and the completed trials add up to the whole batch.
    4. When the run was journalled, ``obs validate`` accepts it.
    """
    assert len(run.results) == len(serial), (
        f"{run.plan.describe()}: {len(run.results)} results != {len(serial)}"
    )
    for ours, ref in zip(run.results, serial):
        assert json.dumps(ours.as_dict(), sort_keys=True) == json.dumps(
            ref.as_dict(), sort_keys=True
        ), f"{run.plan.describe()}: result diverged at index {ref.index}"
    assert results_key(run.results) == results_key(serial), (
        f"{run.plan.describe()}: content address changed"
    )

    starts = [e["chunk"] for e in run.events("chunk_start")]
    dones = [e["chunk"] for e in run.events("chunk_done")]
    assert len(starts) == len(set(starts)), (
        f"{run.plan.describe()}: chunk announced twice: {sorted(starts)}"
    )
    assert len(dones) == len(set(dones)), (
        f"{run.plan.describe()}: chunk completed twice: {sorted(dones)}"
    )
    assert set(dones) == set(starts), (
        f"{run.plan.describe()}: started {sorted(starts)} != done {sorted(dones)}"
    )
    assert sum(e["trials"] for e in run.events("chunk_done")) == len(serial), (
        f"{run.plan.describe()}: completed trials do not add up to the batch"
    )

    if run.journal:
        problems = validate_journal(run.journal)
        assert problems == [], f"{run.plan.describe()}: {problems}"
