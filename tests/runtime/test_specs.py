"""Tests for the declarative spec layer (latency / id-space / repair).

Covers the two properties the spec layer exists for: *round-tripping*
(``as_config()`` → ``from_config()`` rebuilds an equal spec, and a worker
can build the live object from the config alone) and *chunk-boundary
determinism* of the trial kinds built on the specs (a chunk starting
mid-sequence replays the shared-stream prefix — latency draws for
``delay_probe``, churn rounds for ``repair_replay`` — and reproduces the
full-batch results exactly).
"""

from __future__ import annotations

import pickle

import pytest

from repro.churn.models import shrinking_trace
from repro.core.idspace import IdSpaceSpec, IdentifierSpace
from repro.overlay.repair import (
    DegreeRepair,
    FullRepair,
    NoRepair,
    RepairPolicySpec,
)
from repro.runtime.trials import (
    EstimatorSpec,
    OverlaySpec,
    TrialSpec,
    run_chunk,
    trace_to_payload,
)
from repro.sim.latency import LatencyModel, LatencySpec
from repro.sim.messages import MessageMeter
from repro.sim.rng import RngHub


class TestLatencySpec:
    def test_round_trip(self):
        spec = LatencySpec(median_ms=80.0, sigma=0.25)
        assert LatencySpec.from_config(spec.as_config()) == spec

    def test_config_is_plain_json(self):
        config = LatencySpec().as_config()
        assert config == {"median_ms": 50.0, "sigma": 0.5}

    def test_build_inside_worker(self):
        # the worker path: pickle the spec, rebuild the model from it
        spec = pickle.loads(pickle.dumps(LatencySpec(median_ms=20.0, sigma=0.0)))
        model = spec.build(rng=RngHub(3).stream("lat"))
        assert isinstance(model, LatencyModel)
        assert model.median_ms == 20.0
        assert float(model.draw(1)[0]) == pytest.approx(0.02)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            LatencySpec(median_ms=0.0)
        with pytest.raises(ValueError):
            LatencySpec(sigma=-1.0)


class TestRepairPolicySpec:
    def test_round_trip(self):
        for spec in (
            RepairPolicySpec.none(),
            RepairPolicySpec.degree(min_degree=2, target_degree=4, max_links_per_round=50),
            RepairPolicySpec.full(target_degree=6),
        ):
            assert RepairPolicySpec.from_config(spec.as_config()) == spec

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            RepairPolicySpec("cyclon")

    def test_build_against_local_graph(self, tiny_graph):
        meter = MessageMeter()
        policy = RepairPolicySpec.degree(
            min_degree=2, target_degree=3, max_links_per_round=10
        ).build(tiny_graph, rng=RngHub(1).stream("rep"), meter=meter)
        assert isinstance(policy, DegreeRepair)
        assert policy.graph is tiny_graph
        assert policy.meter is meter
        assert policy.min_degree == 2
        assert isinstance(RepairPolicySpec.none().build(tiny_graph), NoRepair)
        assert isinstance(RepairPolicySpec.full().build(tiny_graph), FullRepair)


class TestIdSpaceSpec:
    def test_round_trip(self):
        spec = IdSpaceSpec(transform="power", params={"exponent": 3.0}, stream="sk")
        assert IdSpaceSpec.from_config(spec.as_config()) == spec
        assert IdSpaceSpec.from_config({}) == IdSpaceSpec()

    def test_unknown_transform_rejected(self):
        with pytest.raises(ValueError):
            IdSpaceSpec(transform="zipf")

    def test_uniform_build_matches_plain_space(self, small_het_graph):
        built = IdSpaceSpec(stream="ids").build(small_het_graph, RngHub(7))
        plain = IdentifierSpace(small_het_graph, rng=RngHub(7).stream("ids"))
        assert [built.id_of(u) for u in small_het_graph.nodes()] == [
            plain.id_of(u) for u in small_het_graph.nodes()
        ]

    def test_power_build_matches_public_transform(self, small_het_graph):
        built = IdSpaceSpec(
            transform="power", params={"exponent": 3.0}, stream="sk"
        ).build(small_het_graph, RngHub(7))
        manual = IdentifierSpace(
            small_het_graph, rng=RngHub(7).stream("sk")
        ).with_transform(lambda pos: pos**3.0)
        assert [built.id_of(u) for u in small_het_graph.nodes()] == [
            manual.id_of(u) for u in small_het_graph.nodes()
        ]


def _delay_specs(hub_seed=11, n=300):
    params = {
        "latency": LatencySpec(median_ms=50.0).as_config(),
        "sc": {"l": 20, "timer": 5.0},
        "hops": {"gossip_to": 2, "min_hops_reporting": 3},
        "agg_rounds": 15,
    }
    return [
        TrialSpec(
            "delay_probe",
            hub_seed,
            i,
            overlay=OverlaySpec.heterogeneous(n),
            params=params,
        )
        for i in range(4)
    ]


class TestDelayProbeChunks:
    def test_single_trial_chunks_replay_latency_prefix(self):
        specs = _delay_specs()
        full = run_chunk(specs)
        split = [run_chunk([spec])[0] for spec in specs]
        assert [r.value for r in split] == [r.value for r in full]
        assert [r.extra for r in split] == [r.extra for r in full]

    def test_out_of_range_index_rejected(self):
        bad = _delay_specs()[0]
        bad = TrialSpec(
            bad.kind, bad.hub_seed, 7, overlay=bad.overlay, params=bad.params
        )
        with pytest.raises(ValueError):
            run_chunk([bad])


class TestIdspaceProbeChunks:
    def test_split_matches_full(self):
        specs = [
            TrialSpec(
                "idspace_probe",
                21,
                k,
                overlay=OverlaySpec.heterogeneous(300),
                estimator=EstimatorSpec.interval_density(k=40),
                params={
                    "fresh_name": "idu",
                    "idspace": IdSpaceSpec(
                        transform="power", params={"exponent": 3.0}
                    ).as_config(),
                },
            )
            for k in range(6)
        ]
        full = run_chunk(specs)
        split = run_chunk(specs[:3]) + run_chunk(specs[3:])
        assert [(r.index, r.value, r.extra["messages"]) for r in split] == [
            (r.index, r.value, r.extra["messages"]) for r in full
        ]


def _repair_specs(horizon=40, n=300, indices=None):
    trace = trace_to_payload(
        shrinking_trace(n, 0.5, start=1.0, end=float(horizon), steps=10)
    )
    params = {
        "trace": trace,
        "max_degree": 10,
        "restart_interval": 8,
        "repair": RepairPolicySpec.degree(
            min_degree=3, target_degree=5, max_links_per_round=20
        ).as_config(),
    }
    return [
        TrialSpec(
            "repair_replay",
            33,
            rnd,
            overlay=OverlaySpec.heterogeneous(n),
            params=params,
        )
        for rnd in (indices if indices is not None else range(1, horizon + 1))
    ]


class TestRepairReplayChunks:
    @staticmethod
    def _key(r):
        # repr() compares NaN estimates (pre-first-epoch rounds) as text
        return (r.index, repr(r.value), r.true_size, r.extra)

    def test_chunk_boundary_reproduces_churn_prefix(self):
        specs = _repair_specs()
        full = run_chunk(specs)
        # a chunk holding only the tail must replay rounds 1..cut itself
        cut = len(specs) // 2
        split = run_chunk(specs[:cut]) + run_chunk(specs[cut:])
        assert [self._key(r) for r in split] == [self._key(r) for r in full]

    def test_sparse_tail_indices_match_full_replay(self):
        full = {r.index: r for r in run_chunk(_repair_specs())}
        tail = run_chunk(_repair_specs(indices=[35, 40]))
        for r in tail:
            assert self._key(r) == self._key(full[r.index])

    def test_zero_index_rejected(self):
        # rounds are 1-based; a 0 index would silently never be emitted
        with pytest.raises(ValueError):
            run_chunk(_repair_specs(indices=[0, 5]))

    def test_cumulative_counters_monotone(self):
        results = run_chunk(_repair_specs())
        msgs = [r.extra["messages"] for r in results]
        fails = [r.extra["failures"] for r in results]
        assert msgs == sorted(msgs)
        assert fails == sorted(fails)
        assert msgs[-1] > 0  # degree repair under -50% churn must spend links
