"""Property tests for the cluster's length-prefixed frame codec.

The codec (``send_message`` / ``recv_message``) must round-trip any
message dict through arbitrarily fragmented reads, surface truncation as
:class:`EOFError`, reject oversize length prefixes *before* allocating,
and never hang or return a non-dict no matter what bytes a confused peer
sends.  These are wire-level invariants the chaos harness's frame faults
rely on: a torn frame must look like a transport error, never like data.
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.cluster import (
    MAX_MESSAGE_BYTES,
    recv_message,
    send_message,
)

_HEADER = struct.Struct(">Q")


class ScriptedSocket:
    """A fake socket replaying ``data`` in caller-chosen fragments.

    ``cuts`` are positions at which recv deliberately stops short, so a
    property can drive the codec through every split-read shape.  Once
    the data is exhausted recv returns ``b""`` — a clean peer close.
    """

    def __init__(self, data: bytes, cuts=()) -> None:
        self._data = data
        self._pos = 0
        self._stops = sorted({c for c in cuts if 0 < c < len(data)})
        self.sent = bytearray()
        self.recv_sizes = []

    def recv(self, size: int) -> bytes:
        self.recv_sizes.append(size)
        if self._pos >= len(self._data):
            return b""
        end = self._pos + size
        for stop in self._stops:
            if self._pos < stop < end:
                end = stop
                break
        part = self._data[self._pos : end]
        self._pos = end
        return part

    def sendall(self, data: bytes) -> None:
        self.sent.extend(data)


def framed(message) -> bytes:
    """The exact bytes ``send_message`` puts on the wire for ``message``."""
    sock = ScriptedSocket(b"")
    send_message(sock, message)
    return bytes(sock.sent)


messages = st.dictionaries(
    st.text(max_size=8),
    st.one_of(
        st.integers(),
        st.floats(allow_nan=False),
        st.binary(max_size=64),
        st.lists(st.integers(), max_size=8),
        st.none(),
    ),
    max_size=8,
)


class TestRoundTrip:
    @given(message=messages, data=st.data())
    def test_any_fragmentation_round_trips(self, message, data):
        wire = framed(message)
        cuts = data.draw(
            st.lists(
                st.integers(min_value=1, max_value=max(1, len(wire) - 1)),
                max_size=8,
            )
        )
        sock = ScriptedSocket(wire, cuts=cuts)
        assert recv_message(sock) == dict(message)

    @given(message=messages)
    def test_byte_at_a_time_reads_round_trip(self, message):
        wire = framed(message)
        sock = ScriptedSocket(wire, cuts=range(1, len(wire)))
        assert recv_message(sock) == dict(message)

    def test_two_frames_back_to_back(self):
        first, second = {"type": "ping", "seq": 1}, {"type": "pong", "seq": 1}
        sock = ScriptedSocket(framed(first) + framed(second), cuts=(3, 11, 20))
        assert recv_message(sock) == first
        assert recv_message(sock) == second


class TestTruncation:
    @given(message=messages, data=st.data())
    def test_any_truncation_raises_eoferror(self, message, data):
        wire = framed(message)
        cut = data.draw(st.integers(min_value=0, max_value=len(wire) - 1))
        sock = ScriptedSocket(wire[:cut])
        with pytest.raises(EOFError):
            recv_message(sock)

    def test_clean_close_before_any_byte_is_eof(self):
        with pytest.raises(EOFError, match="peer closed"):
            recv_message(ScriptedSocket(b""))


class TestOversize:
    @given(
        length=st.integers(min_value=MAX_MESSAGE_BYTES + 1, max_value=2**64 - 1)
    )
    @settings(max_examples=30)
    def test_oversize_prefix_rejected_before_allocation(self, length):
        sock = ScriptedSocket(_HEADER.pack(length) + b"x" * 64)
        with pytest.raises(OSError, match="exceeds"):
            recv_message(sock)
        # Only the 8-byte header may have been requested — the bogus
        # payload length must never reach a recv call (no allocation).
        assert all(size <= _HEADER.size for size in sock.recv_sizes)

    def test_limit_itself_is_not_rejected_by_the_guard(self):
        # A frame of exactly MAX_MESSAGE_BYTES passes the size check and
        # then fails as a short read — EOFError, not the OSError guard.
        sock = ScriptedSocket(_HEADER.pack(MAX_MESSAGE_BYTES) + b"x" * 16)
        with pytest.raises(EOFError):
            recv_message(sock)


class TestGarbage:
    @given(payload=st.binary(min_size=0, max_size=256))
    def test_garbage_payload_never_hangs_or_yields_non_dicts(self, payload):
        # A syntactically valid header framing arbitrary bytes: the codec
        # must either produce a dict (random bytes *can* be a valid
        # pickle, e.g. b"}." is {}) or raise — never hang, never hand
        # back a non-dict.
        sock = ScriptedSocket(_HEADER.pack(len(payload)) + payload)
        try:
            message = recv_message(sock)
        except Exception:
            return
        assert isinstance(message, dict)

    @given(junk=st.binary(min_size=1, max_size=64))
    def test_garbage_prefix_shorter_than_a_header_is_eof(self, junk):
        sock = ScriptedSocket(junk[: _HEADER.size - 1])
        with pytest.raises(EOFError):
            recv_message(sock)
