"""Chaos suite: deterministic fault injection against the cluster backend.

Every plan in :func:`repro.runtime.faults.chaos_matrix` — worker kill,
heartbeat stall, frame truncation, slow host — must leave a batch's
results bit-identical to serial with unchanged content addresses, account
for every chunk exactly once, and produce a journal ``obs validate``
accepts.  A stalled worker must additionally be *detected* within the
documented ``misses x interval`` bound, mid-batch, not post-hoc.
"""

from __future__ import annotations

import threading

import pytest

import chaos
from repro.runtime import (
    ClusterExecutor,
    EstimatorSpec,
    OverlaySpec,
    TelemetryCollector,
    TrialSpec,
    WorkerServer,
    run_chunk,
)
from repro.runtime.faults import (
    FAULT_KINDS,
    Fault,
    FaultPlan,
    WorkerFaults,
    chaos_matrix,
)

N = 300


def _specs(count=12, seed=7):
    overlay = OverlaySpec.heterogeneous(N)
    return [
        TrialSpec(
            "static_probe",
            seed,
            i,
            overlay=overlay,
            estimator=EstimatorSpec.sample_collide(l=10),
        )
        for i in range(1, count + 1)
    ]


class TestFaultPlans:
    def test_random_plans_are_seed_reproducible(self):
        a = FaultPlan.random(42, hosts=3, events=2)
        b = FaultPlan.random(42, hosts=3, events=2)
        assert a == b
        assert FaultPlan.random(43, hosts=3, events=2) != a

    def test_random_plans_never_kill_host_zero(self):
        for seed in range(50):
            plan = FaultPlan.random(seed, hosts=3, events=3)
            assert not any(
                e.kind == "kill_worker" and e.host == 0 for e in plan.events
            )

    def test_config_round_trip(self):
        plan = chaos_matrix()["kill_worker"]
        assert FaultPlan.from_config(plan.as_config()) == plan
        soak = FaultPlan.random(7, hosts=4, events=3)
        assert FaultPlan.from_config(soak.as_config()) == soak

    def test_matrix_names_the_acceptance_failure_classes(self):
        matrix = chaos_matrix()
        kinds = {e.kind for plan in matrix.values() for e in plan.events}
        assert {
            "kill_worker",
            "stall_heartbeat",
            "truncate_frame",
            "slow_host",
        } <= kinds

    def test_invalid_faults_are_rejected(self):
        with pytest.raises(ValueError):
            Fault("reboot_rack")
        with pytest.raises(ValueError):
            Fault("kill_worker", host=-1)
        with pytest.raises(ValueError):
            Fault("slow_host")  # timed kind needs seconds > 0
        with pytest.raises(ValueError):
            Fault("kill_worker", after=-1)

    def test_worker_faults_compile_only_the_target_host(self):
        plan = FaultPlan(
            seed=1,
            events=(
                Fault("kill_worker", host=1, after=2),
                Fault("slow_host", host=0, seconds=0.1),
                Fault("truncate_frame", host=0, after=3),
            ),
        )
        zero = plan.worker_faults(0)
        one = plan.worker_faults(1)
        assert zero.kill_after_chunks is None
        assert zero.slow_seconds == 0.1
        assert zero.frame_fault_at(3).mode == "truncate"
        assert one == WorkerFaults(kill_after_chunks=2)
        assert plan.hosts_touched() == (0, 1)

    def test_every_kind_describes_itself(self):
        for kind in FAULT_KINDS:
            seconds = 0.25 if kind in ("slow_host", "delay_frame") else 0.0
            fault = Fault(kind, host=1, after=1, seconds=seconds)
            assert kind in fault.describe()


class TestChaosMatrix:
    @pytest.mark.parametrize("hosts", [2, 3])
    @pytest.mark.parametrize("name", sorted(chaos_matrix(slow_seconds=0.1)))
    def test_plan_preserves_results_and_journal(self, tmp_path, name, hosts):
        plan = chaos_matrix(slow_seconds=0.1)[name]
        specs = _specs()
        serial = run_chunk(list(specs))
        run = chaos.run_chaos(
            plan,
            specs,
            hosts=hosts,
            journal_path=tmp_path / f"{name}-{hosts}.jsonl",
        )
        chaos.assert_chaos_invariants(run, serial)

    def test_kill_plan_actually_loses_the_worker(self, tmp_path):
        plan = chaos_matrix()["kill_worker"]
        specs = _specs()
        serial = run_chunk(list(specs))
        run = chaos.run_chaos(
            plan, specs, hosts=2, journal_path=tmp_path / "kill.jsonl"
        )
        chaos.assert_chaos_invariants(run, serial)
        assert [e["kind"] for e in run.events("fault_injected")] == ["kill_worker"]
        assert [e["host"] for e in run.events("worker_lost")] == [
            run.host_address(1)
        ]
        assert run.telemetry.count("chunk_migrated") >= 1
        journal_kinds = {e["event"] for e in run.journal}
        assert {"fault_injected", "worker_lost", "chunk_migrated"} <= journal_kinds

    def test_truncated_frame_surfaces_as_loss_never_as_bad_results(self):
        plan = chaos_matrix()["frame_truncate"]
        specs = _specs()
        serial = run_chunk(list(specs))
        run = chaos.run_chaos(plan, specs, hosts=2)
        chaos.assert_chaos_invariants(run, serial)
        assert [e["kind"] for e in run.events("fault_injected")] == [
            "truncate_frame"
        ]
        # retries=0: the torn frame converts to a loss + migration.
        assert [e["host"] for e in run.events("worker_lost")] == [
            run.host_address(0)
        ]


class TestHeartbeatDetectionBound:
    def test_stalled_worker_detected_within_bound_mid_batch(self):
        interval, misses = 0.1, 3
        # The straggler fault keeps the batch alive long enough that
        # detection must happen mid-batch, not after the queue drains.
        plan = FaultPlan(
            seed=201,
            name="stall-under-load",
            events=(
                Fault("stall_heartbeat", host=1, after=1),
                Fault("slow_host", host=0, seconds=1.0),
            ),
        )
        specs = _specs()
        serial = run_chunk(list(specs))
        run = chaos.run_chaos(
            plan,
            specs,
            hosts=2,
            heartbeat_interval=interval,
            heartbeat_misses=misses,
        )
        chaos.assert_chaos_invariants(run, serial)
        lost = run.events("worker_lost")
        assert [e["host"] for e in lost] == [run.host_address(1)]
        assert "heartbeat" in lost[0]["reason"]
        assert run.telemetry.count("heartbeat_miss") >= misses
        stalled = min(
            e["at"] for e in run.events("fault_injected")
            if e["kind"] == "stall_heartbeat"
        )
        detected = run.telemetry.at("worker_lost")
        # Documented bound: misses consecutive probes, each costing
        # max(interval, ping timeout); generous slack for CI scheduling.
        bound = misses * max(interval, 0.02)
        assert detected - stalled <= bound + 0.6
        kinds = [e["event"] for e in run.telemetry.events]
        assert kinds.index("worker_lost") < kinds.index("finish")


class TestChunkSizeAdaptation:
    def test_first_batch_plans_uniformly(self):
        executor = ClusterExecutor(["a:1", "b:2"], chunk_size=None)
        chunks, dealt = executor._plan(_specs())
        assert dealt is None
        assert [s.index for chunk in chunks for s in chunk] == list(range(1, 13))

    def test_explicit_chunk_size_disables_adaptation(self):
        executor = ClusterExecutor(["a:1", "b:2"], chunk_size=3)
        executor._note_latency("a:1", 3.0, 10)
        executor._note_latency("b:2", 1.0, 10)
        _chunks, dealt = executor._plan(_specs())
        assert dealt is None

    def test_plan_apportions_inverse_to_latency(self):
        executor = ClusterExecutor(["a:1", "b:2"], chunk_size=None)
        executor._note_latency("a:1", 3.0, 10)  # 0.3 s/trial
        executor._note_latency("b:2", 1.0, 10)  # 0.1 s/trial
        specs = _specs()
        chunks, dealt = executor._plan(specs)
        assert dealt is not None
        trials = {
            host: sum(len(chunks[i]) for i in ids) for host, ids in dealt.items()
        }
        assert trials == {"a:1": 3, "b:2": 9}
        # Chunks still partition the batch contiguously in index order —
        # the snapshot backbone's monotonic-boundary requirement.
        flat = [s.index for chunk in chunks for s in chunk]
        assert flat == [s.index for s in specs]
        # Each host's block is a contiguous run of chunk ids.
        for ids in dealt.values():
            assert ids == list(range(min(ids), max(ids) + 1))

    def test_executor_reuse_adapts_and_stays_bit_exact(self):
        specs = _specs(count=16)
        serial = run_chunk(list(specs))
        slow = WorkerServer(delay=0.3)
        fast = WorkerServer()
        servers = [slow, fast]
        threads = [
            threading.Thread(target=s.serve_forever, daemon=True) for s in servers
        ]
        for thread in threads:
            thread.start()
        try:
            telemetry = TelemetryCollector()
            executor = ClusterExecutor(
                [slow.address, fast.address],
                chunk_size=None,
                progress=telemetry,
                heartbeat_interval=0,
            )
            first = executor.run(list(specs))
            assert chaos.results_key(first) == chaos.results_key(serial)
            # The straggler's latency is now known: the next plan skews
            # trials toward the fast host.
            chunks, dealt = executor._plan(specs)
            assert dealt is not None
            trials = {
                host: sum(len(chunks[i]) for i in ids)
                for host, ids in dealt.items()
            }
            assert trials.get(fast.address, 0) > trials.get(slow.address, 0)
            second = executor.run(list(specs))
            assert chaos.results_key(second) == chaos.results_key(serial)
        finally:
            for server in servers:
                server.close()
            for thread in threads:
                thread.join(timeout=5.0)


@pytest.mark.slow
class TestRandomPlanSoak:
    """Seed-walk the random fault space (excluded from tier-1 via -m)."""

    @pytest.mark.parametrize("seed", range(6))
    def test_random_plans_preserve_results(self, seed):
        plan = FaultPlan.random(seed, hosts=3, events=2)
        specs = _specs()
        serial = run_chunk(list(specs))
        run = chaos.run_chaos(plan, specs, hosts=3)
        chaos.assert_chaos_invariants(run, serial)
