"""Cluster executor: loopback determinism, failure migration, protocol.

The harness spawns real :class:`WorkerServer` instances on loopback
sockets inside threads — the full wire protocol runs, only the "hosts"
share one process.  Fault-injection knobs on the server (``crash_after``,
``delay``) make worker loss and work-stealing deterministic to test.

The acceptance bar mirrors the pool's: results **bit-identical** to
serial at any host count, with unchanged content addresses — including
runs where a host dies mid-batch and its chunks migrate.
"""

from __future__ import annotations

import contextlib
import json
import pathlib
import pickle
import socket
import struct
import threading
import time

import pytest

from repro.analysis.obs_report import (
    journal_to_trace,
    read_journal,
    render_obs_summary,
    validate_journal,
)
from repro.churn.models import shrinking_trace
from repro.overlay.builders import heterogeneous_random
from repro.runtime import (
    ClusterExecutor,
    EstimatorSpec,
    JournalReporter,
    OverlaySpec,
    ResultsStore,
    RuntimeOptions,
    TelemetryCollector,
    TrialSpec,
    WorkerServer,
    parse_hosts,
    run_chunk,
    run_trials,
    trace_to_payload,
)
from repro.runtime.cluster import (
    MAX_MESSAGE_BYTES,
    MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
    _WorkerSession,
    recv_message,
    send_message,
)
from repro.sim.rng import RngHub


def assert_results_equal(a, b):
    """Bit-identity of two result lists (NaN == NaN, unlike dict equality)."""
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        assert json.dumps(ra.as_dict(), sort_keys=True) == json.dumps(
            rb.as_dict(), sort_keys=True
        )


@contextlib.contextmanager
def cluster(count, **server_kwargs):
    """Spawn ``count`` loopback workers on threads; yields their addresses.

    ``server_kwargs`` may be a single dict applied to every worker or a
    per-worker list under the key ``each`` (e.g. ``each=[{"crash_after":
    1}, {}, {}]`` to kill only the first).
    """
    each = server_kwargs.pop("each", None)
    kwargs = each if each is not None else [dict(server_kwargs)] * count
    servers = [WorkerServer(**kw) for kw in kwargs]
    threads = [
        threading.Thread(target=s.serve_forever, daemon=True) for s in servers
    ]
    for thread in threads:
        thread.start()
    try:
        yield [s.address for s in servers]
    finally:
        for server in servers:
            server.close()
        for thread in threads:
            thread.join(timeout=5.0)


N, COUNT = 300, 15


def _static_specs(count=40, seed=7):
    overlay = OverlaySpec.heterogeneous(N)
    return [
        TrialSpec(
            "static_probe",
            seed,
            i,
            overlay=overlay,
            estimator=EstimatorSpec.sample_collide(l=10),
        )
        for i in range(1, count + 1)
    ]


def _replay_specs(seed=17):
    overlay = OverlaySpec.heterogeneous(N)
    params = {
        "trace": trace_to_payload(
            shrinking_trace(N, 0.5, start=1.0, end=float(COUNT), steps=COUNT - 1)
        ),
        "time_per_estimation": 1.0,
        "max_degree": 10,
    }
    return [
        TrialSpec(
            "multi_probe",
            seed,
            i,
            overlay=overlay,
            estimator=EstimatorSpec.hops_sampling(),
            params=params,
            stream=k,
        )
        for i in range(1, COUNT + 1)
        for k in range(2)
    ]


# ----------------------------------------------------------------------
# wire protocol
# ----------------------------------------------------------------------


class TestProtocol:
    def test_message_round_trip(self):
        a, b = socket.socketpair()
        try:
            payload = {"type": "chunk", "chunk": 3, "specs": [1, 2], "snapshot": None}
            send_message(a, payload)
            assert recv_message(b) == payload
        finally:
            a.close(), b.close()

    def test_clean_close_raises_eof(self):
        a, b = socket.socketpair()
        a.close()
        try:
            with pytest.raises(EOFError):
                recv_message(b)
        finally:
            b.close()

    def test_oversized_frame_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">Q", MAX_MESSAGE_BYTES + 1))
            with pytest.raises(OSError):
                recv_message(b)
        finally:
            a.close(), b.close()

    def test_non_dict_message_rejected(self):
        a, b = socket.socketpair()
        try:
            blob = pickle.dumps([1, 2, 3])
            a.sendall(struct.pack(">Q", len(blob)) + blob)
            with pytest.raises(OSError):
                recv_message(b)
        finally:
            a.close(), b.close()

    @pytest.mark.parametrize("bad_version", [0, -1, "2", None, True])
    def test_handshake_invalid_version_is_fatal(self, bad_version):
        """Offers below the floor (or non-integers) fail the handshake."""
        with cluster(1) as hosts:
            name, _, port = hosts[0].rpartition(":")
            sock = socket.create_connection((name, int(port)), timeout=5.0)
            try:
                send_message(sock, {"type": "hello", "version": bad_version})
                reply = recv_message(sock)
                assert reply["type"] == "error"
                assert "protocol" in reply["error"]
            finally:
                sock.close()

    def test_handshake_negotiates_down_to_worker_version(self):
        """A newer driver's offer is answered with the worker's own version."""
        with cluster(1) as hosts:
            name, _, port = hosts[0].rpartition(":")
            sock = socket.create_connection((name, int(port)), timeout=5.0)
            try:
                send_message(
                    sock, {"type": "hello", "version": PROTOCOL_VERSION + 7}
                )
                reply = recv_message(sock)
                assert reply["type"] == "welcome"
                assert reply["version"] == PROTOCOL_VERSION
            finally:
                sock.close()

    def test_handshake_accepts_legacy_v1_driver(self):
        """An old v1 driver (no role field) still gets a v1 chunk session."""
        specs = _static_specs(count=2)
        with cluster(1) as hosts:
            name, _, port = hosts[0].rpartition(":")
            sock = socket.create_connection((name, int(port)), timeout=5.0)
            try:
                send_message(
                    sock, {"type": "hello", "version": MIN_PROTOCOL_VERSION}
                )
                reply = recv_message(sock)
                assert reply["type"] == "welcome"
                assert reply["version"] == MIN_PROTOCOL_VERSION
                send_message(
                    sock,
                    {"type": "chunk", "chunk": 0, "specs": specs, "snapshot": None},
                )
                result = recv_message(sock)
                assert result["type"] == "result"
                assert len(result["results"]) == len(specs)
            finally:
                sock.close()

    def test_driver_downgrades_against_legacy_v1_worker(self):
        """A new driver re-dials a strict-v1 worker with the floor version."""
        listener = socket.create_server(("127.0.0.1", 0))
        address = f"127.0.0.1:{listener.getsockname()[1]}"

        def legacy_worker():
            # A pre-negotiation worker: strict equality on version 1.
            for _ in range(2):
                try:
                    conn, _addr = listener.accept()
                except OSError:
                    return
                try:
                    hello = recv_message(conn)
                    if hello.get("version") != MIN_PROTOCOL_VERSION:
                        send_message(
                            conn,
                            {"type": "error", "error": "protocol mismatch: v1 only"},
                        )
                        continue
                    send_message(
                        conn,
                        {
                            "type": "welcome",
                            "version": MIN_PROTOCOL_VERSION,
                            "pid": 4242,
                        },
                    )
                    return
                finally:
                    conn.close()

        thread = threading.Thread(target=legacy_worker, daemon=True)
        thread.start()
        try:
            session = _WorkerSession.connect(address, timeout=5.0)
            assert session.version == MIN_PROTOCOL_VERSION
            assert session.pid == 4242
            session.close()
        finally:
            listener.close()
            thread.join(timeout=5.0)

    def test_heartbeat_session_answers_pings(self):
        """A v2 heartbeat-role session answers ping with matching pong."""
        with cluster(1) as hosts:
            session = _WorkerSession.connect(hosts[0], timeout=5.0, role="heartbeat")
            try:
                assert session.version == PROTOCOL_VERSION
                for seq in (1, 2, 3):
                    reply = session.request({"type": "ping", "seq": seq})
                    assert reply == {"type": "pong", "seq": seq}
            finally:
                session.close(polite=True)


class TestParseHosts:
    def test_csv_string(self):
        assert parse_hosts("a:1, b:2 ,") == ("a:1", "b:2")

    def test_sequence(self):
        assert parse_hosts(["a:1", "b:2"]) == ("a:1", "b:2")

    def test_none_and_empty(self):
        assert parse_hosts(None) == ()
        assert parse_hosts("") == ()
        assert parse_hosts([]) == ()

    @pytest.mark.parametrize("bad", ["nohost", "a:", ":1", "a:notaport", "a:0", "a:70000"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_hosts(bad)


# ----------------------------------------------------------------------
# determinism: serial == cluster at any host count
# ----------------------------------------------------------------------


class TestClusterDeterminism:
    def test_static_probe_two_hosts_matches_serial(self):
        specs = _static_specs()
        serial = run_chunk(list(specs))
        with cluster(2) as hosts:
            results = ClusterExecutor(hosts).run(list(specs))
        assert_results_equal(serial, results)

    @pytest.mark.parametrize("host_count", [2, 3])
    def test_replay_kind_matches_serial(self, host_count):
        specs = _replay_specs()
        serial = run_trials(specs, runtime=RuntimeOptions(workers=1))
        with cluster(host_count) as hosts:
            results = ClusterExecutor(hosts, chunk_size=3).run(list(specs))
        assert_results_equal(serial, results)

    def test_snapshots_off_matches_serial(self):
        specs = _replay_specs()
        serial = run_trials(specs, runtime=RuntimeOptions(workers=1))
        with cluster(2) as hosts:
            results = ClusterExecutor(hosts, chunk_size=3, snapshots=False).run(
                list(specs)
            )
        assert_results_equal(serial, results)

    def test_content_addresses_match_process_pool(self, tmp_path):
        """Cluster and pool runs of one batch land at the same store key."""
        specs = _replay_specs()
        store_pool = ResultsStore(tmp_path / "pool")
        store_cluster = ResultsStore(tmp_path / "cluster")
        pool_results = run_trials(
            specs, runtime=RuntimeOptions(workers=4, chunk_size=3, store=store_pool)
        )
        with cluster(2) as hosts:
            cluster_results = run_trials(
                specs,
                runtime=RuntimeOptions(
                    hosts=parse_hosts(hosts), chunk_size=3, store=store_cluster
                ),
            )
        assert_results_equal(pool_results, cluster_results)
        keys_pool = {
            i.key for i in store_pool.artifacts() if i.payload == "results"
        }
        keys_cluster = {
            i.key for i in store_cluster.artifacts() if i.payload == "results"
        }
        assert keys_pool == keys_cluster

    def test_run_trials_routes_hosts_to_cluster(self):
        """RuntimeOptions.create accepts the CLI's CSV host string."""
        specs = _static_specs(count=12)
        serial = run_chunk(list(specs))
        telemetry = TelemetryCollector()
        with cluster(2) as hosts:
            runtime = RuntimeOptions.create(
                hosts=",".join(hosts), progress=telemetry
            )
            results = run_trials(specs, runtime=runtime)
        assert_results_equal(serial, results)
        assert telemetry.count("worker_connect") >= 1


# ----------------------------------------------------------------------
# failure handling
# ----------------------------------------------------------------------


class TestWorkerLoss:
    def test_crash_mid_batch_migrates_and_matches_serial(self):
        """Kill one of three workers mid-batch: bit-identical results,
        exactly-once chunk accounting, and the full event trail."""
        specs = _replay_specs()
        serial = run_trials(specs, runtime=RuntimeOptions(workers=1))
        telemetry = TelemetryCollector()
        with cluster(3, each=[{"crash_after": 1}, {}, {}]) as hosts:
            executor = ClusterExecutor(
                hosts, chunk_size=3, progress=telemetry, retries=1, backoff=0.01
            )
            results = executor.run(list(specs))
        assert_results_equal(serial, results)
        assert telemetry.count("worker_lost") == 1
        assert telemetry.count("chunk_migrated") >= 1
        # Exactly-once: every chunk announced once, completed once, and
        # the completed trial counts cover the batch exactly.
        starts = [e["chunk"] for e in telemetry.events if e["event"] == "chunk_start"]
        dones = [e["chunk"] for e in telemetry.events if e["event"] == "chunk_done"]
        assert sorted(starts) == sorted(set(starts))
        assert sorted(dones) == sorted(set(dones))
        assert sorted(starts) == sorted(dones)
        done_trials = sum(
            e["trials"] for e in telemetry.events if e["event"] == "chunk_done"
        )
        assert done_trials == len(specs)

    def test_all_hosts_dead_falls_back_serially(self):
        """Unreachable hosts: the driver finishes the batch itself."""
        # Bind-then-close gives ports that refuse connections immediately.
        doomed = [WorkerServer() for _ in range(2)]
        hosts = [s.address for s in doomed]
        for server in doomed:
            server.close()
        specs = _static_specs(count=12)
        serial = run_chunk(list(specs))
        telemetry = TelemetryCollector()
        executor = ClusterExecutor(
            hosts, chunk_size=3, progress=telemetry, retries=0, backoff=0.01
        )
        results = executor.run(list(specs))
        assert_results_equal(serial, results)
        assert telemetry.count("worker_lost") == 2
        assert telemetry.count("partial_fallback") == 1
        assert telemetry.count("finish") == 1

    def test_idle_worker_death_detected_by_heartbeat(self):
        """Regression for the silent-failure window: a worker that dies
        while *idle* (its queue drained, nothing in flight) used to stay
        "live" until the batch drained; the heartbeat monitor must now
        declare it lost while the batch is still running."""
        specs = _static_specs(count=8)
        serial = run_chunk(list(specs))
        telemetry = TelemetryCollector()
        slow = WorkerServer(delay=1.0)
        fast = WorkerServer()
        servers = [slow, fast]
        threads = [
            threading.Thread(target=s.serve_forever, daemon=True) for s in servers
        ]
        for thread in threads:
            thread.start()
        try:
            done = threading.Event()
            run_box = {}

            def drive():
                executor = ClusterExecutor(
                    [slow.address, fast.address],
                    chunk_size=4,
                    progress=telemetry,
                    heartbeat_interval=0.05,
                    heartbeat_misses=2,
                )
                run_box["results"] = executor.run(list(specs))
                done.set()

            driver = threading.Thread(target=drive, daemon=True)
            driver.start()
            # The fast worker finishes its one chunk and goes idle while
            # the slow worker is still sleeping; then it "dies".
            time.sleep(0.4)
            assert not done.is_set(), "batch drained before the fault fired"
            fast.close()
            driver.join(timeout=30.0)
            assert done.is_set()
        finally:
            for server in servers:
                server.close()
            for thread in threads:
                thread.join(timeout=5.0)
        assert_results_equal(serial, run_box["results"])
        lost = [e for e in telemetry.events if e["event"] == "worker_lost"]
        assert [e["host"] for e in lost] == [fast.address]
        assert "heartbeat" in lost[0]["reason"]
        assert telemetry.count("heartbeat_miss") >= 2
        # The loss must be observed mid-batch — before the batch finish —
        # not discovered after the fact.
        kinds = [e["event"] for e in telemetry.events]
        assert kinds.index("worker_lost") < kinds.index("finish")

    def test_worker_side_exception_aborts_the_batch(self):
        """A deterministic chunk error must raise, not migrate forever."""
        specs = [TrialSpec("no_such_kind", 7, i) for i in range(1, 5)]
        with cluster(2) as hosts:
            executor = ClusterExecutor(hosts, chunk_size=2, retries=0)
            with pytest.raises(RuntimeError, match="no_such_kind"):
                executor.run(list(specs))

    def test_requires_hosts(self):
        with pytest.raises(ValueError):
            ClusterExecutor([])
        with pytest.raises(ValueError):
            ClusterExecutor(["a:1", "a:1"])


class TestScheduling:
    def test_idle_host_steals_from_straggler(self):
        """A delayed worker loses tail chunks to the fast one — results
        unchanged, ``steal`` events reported."""
        specs = _static_specs(count=40)
        serial = run_chunk(list(specs))
        telemetry = TelemetryCollector()
        with cluster(2, each=[{"delay": 0.3}, {}]) as hosts:
            executor = ClusterExecutor(hosts, chunk_size=4, progress=telemetry)
            results = executor.run(list(specs))
        assert_results_equal(serial, results)
        assert telemetry.count("steal") >= 1

    def test_non_portable_batch_runs_serially(self):
        """Live graphs can't cross sockets: explicit fallback, same results."""
        graph = heterogeneous_random(80, rng=RngHub(3).stream("overlay"))
        specs = [
            TrialSpec(
                "static_probe",
                3,
                i,
                overlay=graph,
                estimator=EstimatorSpec.sample_collide(l=10),
            )
            for i in range(1, 6)
        ]
        serial = run_chunk(
            [
                TrialSpec(
                    "static_probe",
                    3,
                    i,
                    overlay=graph.copy(),
                    estimator=EstimatorSpec.sample_collide(l=10),
                )
                for i in range(1, 6)
            ]
        )
        telemetry = TelemetryCollector()
        # Hosts never contacted: no servers are running behind them.
        executor = ClusterExecutor(["127.0.0.1:1", "127.0.0.1:2"], progress=telemetry)
        results = executor.run(specs)
        assert_results_equal(serial, results)
        assert telemetry.count("fallback") == 1
        assert telemetry.count("worker_connect") == 0

    def test_empty_batch(self):
        assert ClusterExecutor(["127.0.0.1:1"]).run([]) == []


# ----------------------------------------------------------------------
# journal integration
# ----------------------------------------------------------------------


class TestClusterJournal:
    def test_distributed_run_journal_validates(self, tmp_path):
        """A real distributed run with an injected crash produces a journal
        `obs validate` accepts, including the cluster event types."""
        journal_path = tmp_path / "cluster.jsonl"
        specs = _replay_specs()
        with JournalReporter(journal_path) as journal:
            with cluster(3, each=[{"crash_after": 1}, {}, {}]) as hosts:
                # retries=0 so the crashed host is declared lost on first
                # failure — with backoff, healthy peers can steal all of
                # its work before retries exhaust and the loss never fires.
                executor = ClusterExecutor(
                    hosts, chunk_size=3, progress=journal, retries=0
                )
                executor.run(list(specs))
        events = read_journal(journal_path)
        assert validate_journal(events) == []
        kinds = {e["event"] for e in events}
        assert "worker_connect" in kinds
        assert "worker_lost" in kinds
        assert "chunk_migrated" in kinds


DATA = pathlib.Path(__file__).parent / "data"


class TestGoldenClusterJournal:
    """The committed distributed-run journal stays valid and renderable."""

    def test_golden_journal_validates(self):
        events = read_journal(DATA / "golden_cluster_journal.jsonl")
        assert validate_journal(events) == []

    def test_golden_journal_summary_counts_cluster_events(self):
        events = read_journal(DATA / "golden_cluster_journal.jsonl")
        summary = render_obs_summary(events)
        assert "cluster hosts: 3" in summary
        assert "workers lost: 1" in summary
        assert "chunks migrated: 1" in summary
        assert "steals: 1" in summary

    def test_golden_journal_trace_has_cluster_instants(self):
        events = read_journal(DATA / "golden_cluster_journal.jsonl")
        trace = journal_to_trace(events)
        names = {e["name"] for e in trace["traceEvents"]}
        assert "worker connect 10.0.0.1:7700" in names
        assert "worker lost 10.0.0.2:7700" in names
        assert "chunk 1 migrated" in names
        assert "chunk 1 stolen" in names


class TestGoldenHeartbeatJournal:
    """The committed heartbeat-detected-loss journal stays valid.

    The fixture tells the canonical chaos story: a kill fault fires on a
    worker whose queue is empty, the heartbeat monitor counts it out, the
    loss is declared mid-batch and its queued chunk migrates — all on one
    timeline ``obs validate`` accepts.
    """

    def test_golden_heartbeat_journal_validates(self):
        events = read_journal(DATA / "golden_heartbeat_journal.jsonl")
        assert validate_journal(events) == []

    def test_golden_heartbeat_journal_orders_cause_before_recovery(self):
        events = read_journal(DATA / "golden_heartbeat_journal.jsonl")
        kinds = [e["event"] for e in events]
        fault = kinds.index("fault_injected")
        misses = [i for i, k in enumerate(kinds) if k == "heartbeat_miss"]
        lost = kinds.index("worker_lost")
        assert fault < misses[0] < misses[-1] < lost < kinds.index("chunk_migrated")
        assert lost < kinds.index("batch_finish")
        threshold = events[misses[-1]]["threshold"]
        assert events[misses[-1]]["misses"] == threshold

    def test_golden_heartbeat_journal_summary_counts_liveness_events(self):
        events = read_journal(DATA / "golden_heartbeat_journal.jsonl")
        summary = render_obs_summary(events)
        assert "cluster hosts: 2" in summary
        assert "workers lost: 1" in summary
        assert "chunks migrated: 1" in summary
        assert "heartbeat misses: 2" in summary
        assert "faults injected: 1" in summary

    def test_golden_heartbeat_journal_trace_has_liveness_instants(self):
        events = read_journal(DATA / "golden_heartbeat_journal.jsonl")
        trace = journal_to_trace(events)
        names = {e["name"] for e in trace["traceEvents"]}
        assert "fault kill_worker on 10.0.0.2:7700" in names
        assert "heartbeat miss 10.0.0.2:7700" in names
        assert "worker lost 10.0.0.2:7700" in names
        assert "chunk 2 migrated" in names
