"""Trend tracking: provenance headers, cross-revision joins, drift, baselines."""

from __future__ import annotations

import json

import pytest

from repro.runtime import ResultsStore, TrialResult, group_key
from repro.runtime.trends import (
    UNKNOWN_REVISION,
    check_baseline,
    compare_revisions,
    discover_stores,
    load_baseline,
    make_baseline,
    scan_stores,
    trend_report,
)

CONFIG = {"kind": "static_probe", "hub_seed": 1, "n": 100, "trials": [[1, 0], [2, 0]]}


def _results(values, true_size=100.0, messages=None):
    out = []
    for i, v in enumerate(values, 1):
        extra = {"messages": messages[i - 1]} if messages else None
        out.append(
            TrialResult(index=i, value=float(v), true_size=true_size, extra=extra)
        )
    return out


def _save(root, values, revision, seed=1, tag="exp", saved_at=None, messages=None):
    """One artifact with pinned provenance (no reliance on git/wall-clock)."""
    store = ResultsStore(root)
    config = dict(CONFIG, hub_seed=seed)
    meta = {"trials": len(values), "tag": tag, "git_revision": revision}
    if saved_at is not None:
        meta["saved_at"] = saved_at
    return store.save(config, _results(values, messages=messages), meta=meta)


class TestGroupKey:
    def test_ignores_seed_fields(self):
        a = group_key(dict(CONFIG, hub_seed=1))
        b = group_key(dict(CONFIG, hub_seed=2, overlay_seed=99))
        assert a == b

    def test_sensitive_to_substantive_params(self):
        assert group_key(CONFIG) != group_key(dict(CONFIG, n=200))
        assert group_key(CONFIG) != group_key(dict(CONFIG, kind="fresh_probe"))

    def test_non_mapping_config(self):
        # degenerate configs still hash (nothing to strip)
        assert group_key([1, 2, 3]) == group_key([1, 2, 3])


class TestProvenanceHeaders:
    def test_save_stamps_provenance(self, tmp_path):
        _save(tmp_path, [99, 101, 100], revision="cafe1234", saved_at=1000.0)
        (info,) = ResultsStore(tmp_path).artifacts()
        assert info.revision == "cafe1234"
        assert info.group == group_key(CONFIG)
        assert info.saved_at == 1000.0
        assert info.metrics["quality"]["n"] == 3
        assert info.metrics["quality"]["mean"] == pytest.approx(100.0)

    def test_save_defaults_schema_and_group(self, tmp_path):
        store = ResultsStore(tmp_path)
        path = store.save(CONFIG, _results([100.0]))
        header = json.loads(path.read_text())["meta"]
        assert header["store_schema_version"] == 1
        assert header["group"] == group_key(CONFIG)
        assert header["saved_at"] > 0
        assert "git_revision" in header

    def test_caller_meta_wins(self, tmp_path):
        store = ResultsStore(tmp_path)
        path = store.save(
            CONFIG, _results([100.0]), meta={"git_revision": "pinned", "metrics": {}}
        )
        header = json.loads(path.read_text())["meta"]
        assert header["git_revision"] == "pinned"
        assert header["metrics"] == {}


class TestDiscoverStores:
    def test_direct_store(self, tmp_path):
        _save(tmp_path / "store", [100], revision="r1")
        assert discover_stores(tmp_path / "store") == [tmp_path / "store"]

    def test_parent_of_revision_stores(self, tmp_path):
        _save(tmp_path / "revA", [100], revision="a")
        _save(tmp_path / "revB", [100], revision="b", seed=2)
        assert discover_stores(tmp_path) == [tmp_path / "revA", tmp_path / "revB"]

    def test_empty_directory(self, tmp_path):
        assert discover_stores(tmp_path) == []


class TestScanStores:
    def test_joins_across_sibling_stores(self, tmp_path):
        _save(tmp_path / "revA", [100, 100], revision="a", saved_at=1.0)
        _save(tmp_path / "revB", [100, 100], revision="b", saved_at=2.0)
        records = scan_stores([tmp_path])
        assert len(records) == 2
        assert {r.revision for r in records} == {"a", "b"}
        # identical config in two stores -> same group, distinct uids
        assert len({r.group for r in records}) == 1
        assert len({r.uid for r in records}) == 2

    def test_legacy_artifact_backfilled(self, tmp_path):
        """Artifacts saved before provenance headers still join (group and
        metrics recovered from the payload, revision unknown)."""
        path = tmp_path / "ab" / ("a" * 64 + ".json")
        path.parent.mkdir(parents=True)
        artifact = {
            "schema": 1,
            "meta": {"trials": 2, "tag": "old"},
            "config": dict(CONFIG),
            "results": [r.as_dict() for r in _results([90.0, 110.0])],
        }
        path.write_text(json.dumps(artifact))
        (record,) = scan_stores([tmp_path])
        assert record.revision == UNKNOWN_REVISION
        assert record.group == group_key(CONFIG)
        assert record.metrics["quality"]["n"] == 2

    def test_corrupt_artifact_skipped(self, tmp_path):
        _save(tmp_path, [100], revision="a")
        bad = tmp_path / "cd" / ("c" * 64 + ".json")
        bad.parent.mkdir(parents=True)
        bad.write_text('{"schema": 1, "meta": {}, "config": {1: }')
        assert len(scan_stores([tmp_path])) == 1


class TestTrendReport:
    def test_no_drift_when_values_identical(self, tmp_path):
        _save(tmp_path / "revA", [98, 101, 100, 99, 102], revision="a", saved_at=1.0)
        _save(tmp_path / "revB", [98, 101, 100, 99, 102], revision="b", saved_at=2.0)
        report = trend_report([tmp_path], metrics=("quality",))
        (group,) = report.groups
        assert group.revisions == ["a", "b"]
        (metric,) = group.metrics
        assert metric.metric == "quality"
        assert not metric.drifted
        assert metric.delta == pytest.approx(0.0)
        assert not report.drifted

    def test_drift_fires_on_shift(self, tmp_path):
        _save(tmp_path / "revA", [98, 101, 100, 99, 102], revision="a", saved_at=1.0)
        _save(tmp_path / "revB", [138, 141, 140, 139, 142], revision="b", saved_at=2.0)
        report = trend_report([tmp_path], metrics=("quality",))
        (metric,) = report.groups[0].metrics
        assert metric.drifted
        assert metric.delta == pytest.approx(40.0)
        assert report.drifted

    def test_seed_sets_pool_within_revision(self, tmp_path):
        _save(tmp_path, [99, 100], revision="a", seed=1, saved_at=1.0)
        _save(tmp_path, [100, 101], revision="a", seed=2, saved_at=1.5)
        report = trend_report([tmp_path], metrics=("quality",))
        (group,) = report.groups
        (point,) = group.metrics[0].points
        assert point.samples == 4
        assert point.artifacts == 2

    def test_deterministic_intervals(self, tmp_path):
        _save(tmp_path, [97, 99, 100, 101, 103], revision="a")
        one = trend_report([tmp_path], metrics=("quality",))
        two = trend_report([tmp_path], metrics=("quality",))
        ci_one = one.groups[0].metrics[0].points[0].ci
        ci_two = two.groups[0].metrics[0].points[0].ci
        assert (ci_one.lower, ci_one.upper) == (ci_two.lower, ci_two.upper)

    def test_messages_metric(self, tmp_path):
        _save(
            tmp_path,
            [100, 100, 100],
            revision="a",
            messages=[500, 600, 700],
        )
        report = trend_report([tmp_path], metrics=("messages",))
        (metric,) = report.groups[0].metrics
        assert metric.points[0].ci.mean == pytest.approx(600.0)


class TestCompareRevisions:
    def test_prefix_resolution_and_verdict(self, tmp_path):
        _save(tmp_path / "revA", [98, 101, 100, 99, 102], revision="aaaa1111", saved_at=1.0)
        _save(tmp_path / "revB", [138, 141, 140, 139, 142], revision="bbbb2222", saved_at=2.0)
        (cmp,) = compare_revisions([tmp_path], "aaaa", "bbbb", metrics=("quality",))
        assert cmp.drifted
        assert cmp.delta == pytest.approx(40.0)

    def test_unknown_revision_raises(self, tmp_path):
        _save(tmp_path, [100], revision="aaaa1111")
        with pytest.raises(ValueError, match="no artifacts at revision"):
            compare_revisions([tmp_path], "aaaa", "zzzz")


class TestBaselineCheck:
    def test_roundtrip_ok(self, tmp_path):
        _save(tmp_path / "revA", [98, 101, 100, 99, 102], revision="a", saved_at=1.0)
        baseline = make_baseline([tmp_path / "revA"])
        check = check_baseline([tmp_path / "revA"], baseline)
        assert check.ok
        assert [o.status for o in check.outcomes] == ["ok"]

    def test_drift_detected_at_newer_revision(self, tmp_path):
        _save(tmp_path / "revA", [98, 101, 100, 99, 102], revision="a", saved_at=1.0)
        baseline = make_baseline([tmp_path / "revA"])
        _save(tmp_path / "revB", [138, 141, 140, 139, 142], revision="b", saved_at=2.0)
        check = check_baseline([tmp_path], baseline)
        assert not check.ok
        (outcome,) = check.failures
        assert outcome.status == "drift"
        assert outcome.observed_mean == pytest.approx(140.0)

    def test_missing_group_fails(self, tmp_path, tmp_path_factory):
        _save(tmp_path, [100, 100, 100], revision="a")
        baseline = make_baseline([tmp_path])
        empty = tmp_path_factory.mktemp("empty")
        _save(empty, [100], revision="b", tag="other")
        baseline["groups"]["deadbeef"] = {
            "tag": "gone",
            "metrics": {"quality": {"mean": 1.0, "lower": 0.5, "upper": 1.5}},
        }
        check = check_baseline([empty], baseline)
        statuses = {o.group: o.status for o in check.outcomes}
        assert statuses["deadbeef"] == "missing"
        assert not check.ok

    def test_new_groups_reported_not_failed(self, tmp_path):
        _save(tmp_path, [100, 100, 100], revision="a", tag="one")
        baseline = make_baseline([tmp_path])
        _save(tmp_path, [50, 50, 50], revision="a", tag="two", seed=9)
        # same config at a different seed joins the existing group; use a
        # different config for a genuinely new group
        store = ResultsStore(tmp_path)
        store.save(
            dict(CONFIG, n=999),
            _results([10.0]),
            meta={"trials": 1, "tag": "two", "git_revision": "a"},
        )
        check = check_baseline([tmp_path], baseline)
        assert any(group == group_key(dict(CONFIG, n=999)) for _, group in check.new_groups)

    def test_load_baseline_validates(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text('{"baseline_schema": 99, "groups": {}}')
        with pytest.raises(ValueError, match="not a trends baseline"):
            load_baseline(path)

    def test_pinned_revision(self, tmp_path):
        _save(tmp_path / "revA", [98, 101, 100, 99, 102], revision="a", saved_at=1.0)
        _save(tmp_path / "revB", [138, 141, 140, 139, 142], revision="b", saved_at=2.0)
        baseline = make_baseline([tmp_path], revision="a")
        # checking the pinned old revision passes even though newer drifted
        check = check_baseline([tmp_path], baseline, revision="a")
        assert check.ok
