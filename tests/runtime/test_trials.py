"""Tests for the trial model: specs, payloads, portability, chunk runners."""

from __future__ import annotations

import pickle

import pytest

from repro.churn.models import shrinking_trace
from repro.core.sample_collide import SampleCollideEstimator
from repro.runtime.trials import (
    EstimatorSpec,
    OverlaySpec,
    TrialSpec,
    run_chunk,
    trace_from_payload,
    trace_to_payload,
)
from repro.sim.rng import RngHub


class TestTracePayload:
    def test_round_trip(self):
        trace = shrinking_trace(400, 0.5, start=1, end=10, steps=10)
        rebuilt = trace_from_payload(trace_to_payload(trace))
        assert len(rebuilt) == len(trace)
        assert [e.time for e in rebuilt] == [e.time for e in trace]
        assert [e.leaves for e in rebuilt] == [e.leaves for e in trace]
        assert rebuilt.net_change(400) == trace.net_change(400)

    def test_payload_is_jsonable(self):
        payload = trace_to_payload(shrinking_trace(100, 0.3, steps=5))
        assert all(isinstance(item, dict) for item in payload)
        spec = TrialSpec(
            "dynamic_probe",
            1,
            1,
            overlay=OverlaySpec.heterogeneous(100),
            estimator=EstimatorSpec.sample_collide(l=10),
            params={"trace": payload},
        )
        assert spec.portable


class TestSpecs:
    def test_unknown_builder_rejected(self):
        with pytest.raises(ValueError):
            OverlaySpec("does_not_exist", {"n": 10})
        with pytest.raises(ValueError):
            EstimatorSpec("does_not_exist")

    def test_overlay_build_deterministic(self):
        spec = OverlaySpec.heterogeneous(300, max_degree=8)
        a = spec.build(RngHub(5))
        b = spec.build(RngHub(5))
        assert sorted(a.edges()) == sorted(b.edges())

    def test_portable_spec_pickles(self):
        spec = TrialSpec(
            "static_probe",
            42,
            3,
            overlay=OverlaySpec.heterogeneous(200),
            estimator=EstimatorSpec.sample_collide(l=20),
        )
        assert spec.portable
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec

    def test_live_objects_not_portable(self):
        graph = OverlaySpec.heterogeneous(50).build(RngHub(1))
        assert not TrialSpec("static_probe", 1, 1, overlay=graph).portable
        assert not TrialSpec(
            "static_probe",
            1,
            1,
            overlay=OverlaySpec.heterogeneous(50),
            estimator=lambda g, h: None,
        ).portable

    def test_as_config_rejects_live_objects(self):
        graph = OverlaySpec.heterogeneous(50).build(RngHub(1))
        with pytest.raises(TypeError):
            TrialSpec("static_probe", 1, 1, overlay=graph).as_config()


class TestChunkRunners:
    def _specs(self, count=6):
        return [
            TrialSpec(
                "static_probe",
                99,
                i,
                overlay=OverlaySpec.heterogeneous(300),
                estimator=EstimatorSpec.sample_collide(l=20),
            )
            for i in range(1, count + 1)
        ]

    def test_chunk_split_matches_whole(self):
        """A chunk's results depend only on (hub_seed, index) — the
        determinism property parallel execution relies on."""
        specs = self._specs()
        whole = run_chunk(specs)
        split = run_chunk(specs[:3]) + run_chunk(specs[3:])
        assert [(r.index, r.value) for r in whole] == [
            (r.index, r.value) for r in split
        ]

    def test_matches_legacy_serial_loop(self):
        """Spec execution reproduces the historical inline loop exactly."""
        hub = RngHub(99)
        graph = OverlaySpec.heterogeneous(300).build(RngHub(99))
        expected = [
            SampleCollideEstimator(
                graph, l=20, rng=hub.child(f"run{i}").stream("sc")
            )
            .estimate()
            .value
            for i in range(1, 7)
        ]
        got = [r.value for r in run_chunk(self._specs())]
        assert got == expected

    def test_mixed_kind_chunk_rejected(self):
        specs = self._specs(2)
        bad = [specs[0], TrialSpec("agg_epoch", 99, 2, overlay=specs[1].overlay)]
        with pytest.raises(ValueError):
            run_chunk(bad)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            run_chunk([TrialSpec("no_such_kind", 1, 1)])

    def test_dynamic_probe_replay_determinism(self):
        """Churn replay: estimating only a suffix of the indices yields the
        same values the full serial pass produces for those indices."""
        overlay = OverlaySpec.heterogeneous(400)
        trace = trace_to_payload(shrinking_trace(400, 0.5, start=1, end=10, steps=10))
        params = {"trace": trace, "time_per_estimation": 1.0, "max_degree": 10}
        est = EstimatorSpec.sample_collide(l=20)
        specs = [
            TrialSpec("dynamic_probe", 7, i, overlay=overlay, estimator=est, params=params)
            for i in range(1, 11)
        ]
        full = {r.index: (r.value, r.true_size) for r in run_chunk(specs)}
        tail = {r.index: (r.value, r.true_size) for r in run_chunk(specs[6:])}
        for i in tail:
            assert tail[i] == full[i]
