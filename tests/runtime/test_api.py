"""Tests for run_trials/sweep: caching, force, batch configs, series merge."""

from __future__ import annotations

import pytest

import repro.runtime.api as api
from repro.runtime import (
    EstimatorSpec,
    OverlaySpec,
    ResultsStore,
    RuntimeOptions,
    TelemetryCollector,
    TrialSpec,
    batch_config,
    run_trials,
    series_from_results,
    sweep,
)
from repro.runtime.trials import TrialResult


def _specs(count=5, seed=11, l=20):
    overlay = OverlaySpec.heterogeneous(250)
    estimator = EstimatorSpec.sample_collide(l=l)
    return [
        TrialSpec("static_probe", seed, i, overlay=overlay, estimator=estimator)
        for i in range(1, count + 1)
    ]


class TestBatchConfig:
    def test_shared_fields_compress(self):
        config = batch_config(_specs(3))
        assert config["trials"] == [[1, 0], [2, 0], [3, 0]]
        assert config["kind"] == "static_probe"
        assert "index" not in config

    def test_stream_pairing_changes_key(self):
        """Regression: two batches pairing the same indices with the same
        stream pool differently must not collide on one cache entry."""
        from repro.runtime.store import content_key

        overlay = OverlaySpec.heterogeneous(250)
        estimator = EstimatorSpec.sample_collide(l=20)

        def batch(pairs):
            return [
                TrialSpec(
                    "multi_probe", 11, i, overlay=overlay, estimator=estimator, stream=k
                )
                for i, k in pairs
            ]

        a = content_key(batch_config(batch([(1, 0), (2, 1)])))
        b = content_key(batch_config(batch([(1, 1), (2, 0)])))
        assert a != b

    def test_heterogeneous_batch_rejected(self):
        specs = _specs(2) + [_specs(1, l=10)[0]]
        with pytest.raises(ValueError):
            batch_config(specs)

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            batch_config([])


class TestCaching:
    def test_second_run_is_cache_hit(self, tmp_path, monkeypatch):
        store = ResultsStore(tmp_path)
        first = run_trials(_specs(), store=store)
        assert len(store) == 1

        # Any attempt to execute again would blow up: the cache must serve.
        def boom(self, specs):
            raise AssertionError("executor ran despite cache hit")

        monkeypatch.setattr(api.TrialExecutor, "run", boom)
        telemetry = TelemetryCollector()
        second = run_trials(_specs(), store=store, progress=telemetry)
        assert telemetry.count("cache_hit") == 1
        assert [(r.index, r.value) for r in first] == [
            (r.index, r.value) for r in second
        ]

    def test_force_recomputes(self, tmp_path):
        store = ResultsStore(tmp_path)
        run_trials(_specs(), store=store)
        telemetry = TelemetryCollector()
        run_trials(_specs(), store=store, force=True, progress=telemetry)
        assert telemetry.count("cache_hit") == 0
        assert telemetry.count("start") == 1

    def test_different_params_different_entry(self, tmp_path):
        store = ResultsStore(tmp_path)
        run_trials(_specs(l=20), store=store)
        run_trials(_specs(l=10), store=store)
        assert len(store) == 2

    def test_runtime_options_bundle(self, tmp_path):
        runtime = RuntimeOptions.create(workers=2, cache_dir=tmp_path)
        assert runtime.store is not None
        run_trials(_specs(), runtime=runtime)
        assert len(runtime.store) == 1

    def test_kwargs_override_runtime(self, tmp_path):
        runtime = RuntimeOptions.create(cache_dir=tmp_path)
        run_trials(_specs(), runtime=runtime)
        telemetry = TelemetryCollector()
        # force=True overrides the bundled force=False
        run_trials(_specs(), runtime=runtime, force=True, progress=telemetry)
        assert telemetry.count("cache_hit") == 0


class TestSweep:
    def test_sweep_smoke(self, tmp_path):
        store = ResultsStore(tmp_path)
        grid = sweep(
            lambda l: _specs(count=3, l=l),
            [10, 20, 40],
            store=store,
        )
        assert sorted(grid) == [10, 20, 40]
        assert all(len(results) == 3 for results in grid.values())
        assert len(store) == 3
        # re-sweeping with one extra point only adds one artifact
        grid2 = sweep(lambda l: _specs(count=3, l=l), [10, 20, 40, 80], store=store)
        assert len(store) == 4
        assert [(r.index, r.value) for r in grid2[20]] == [
            (r.index, r.value) for r in grid[20]
        ]


class TestSeriesMerge:
    def test_stream_filter_and_skips(self):
        results = [
            TrialResult(1, 100.0, 250.0, stream=0),
            TrialResult(1, 90.0, 250.0, stream=1),
            TrialResult(2, 110.0, 250.0, stream=0),
            TrialResult(3, 0.0, 0.0, stream=0, ok=False),
        ]
        series = series_from_results(results, name="s0", stream=0)
        assert list(series.x) == [1.0, 2.0]
        assert list(series.estimates) == [100.0, 110.0]
        assert series.name == "s0"
