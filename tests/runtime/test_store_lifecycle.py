"""Lifecycle APIs of the results store: artifacts() / stats() / gc()."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.runtime.store import ResultsStore, SCHEMA_VERSION
from repro.runtime.trials import TrialResult


def _results(n=3):
    return [TrialResult(index=i, value=100.0 + i, true_size=100.0) for i in range(n)]


def _fill(store, count=3, tag="tagged"):
    configs = []
    for i in range(count):
        config = {"experiment": "lifecycle", "point": i}
        store.save(config, _results(), meta={"trials": 3, "tag": tag})
        configs.append(config)
    return configs


class TestArtifacts:
    def test_empty_store(self, tmp_path):
        store = ResultsStore(tmp_path / "nope")
        assert store.artifacts() == []
        assert store.stats().artifacts == 0

    def test_enumeration_metadata(self, tmp_path):
        store = ResultsStore(tmp_path)
        configs = _fill(store, count=3, tag="abl")
        infos = store.artifacts()
        assert len(infos) == 3
        keys = {store.key_for(c) for c in configs}
        assert {i.key for i in infos} == keys
        for info in infos:
            assert info.tag == "abl"
            assert info.trials == 3
            assert info.schema == SCHEMA_VERSION
            assert info.size_bytes == info.path.stat().st_size
            assert info.size_bytes > 0

    def test_oldest_first_ordering(self, tmp_path):
        store = ResultsStore(tmp_path)
        _fill(store, count=2)
        infos = store.artifacts()
        assert infos[0].created <= infos[1].created

    def test_unreadable_artifact_skipped(self, tmp_path):
        store = ResultsStore(tmp_path)
        _fill(store, count=1)
        bad = tmp_path / "zz"
        bad.mkdir()
        (bad / "broken.json").write_text("{not json")
        assert len(store.artifacts()) == 1

    def test_header_read_on_large_artifact(self, tmp_path):
        """Artifacts bigger than the probe window still enumerate fully."""
        store = ResultsStore(tmp_path)
        big = [
            TrialResult(
                index=i,
                value=1.0,
                true_size=1.0,
                extra={"curve": list(range(400))},
            )
            for i in range(200)
        ]
        store.save({"big": 1}, big, meta={"trials": 200, "tag": "huge"})
        info = store.artifacts()[0]
        assert info.size_bytes > ResultsStore._HEADER_PROBE_BYTES
        assert info.tag == "huge"
        assert info.trials == 200
        assert info.schema == SCHEMA_VERSION

    def test_header_read_falls_back_on_legacy_key_order(self, tmp_path):
        """Pre-reorder artifacts (config before meta) still enumerate."""
        store = ResultsStore(tmp_path)
        config = {"legacy": 1, "payload": ["x" * 1000] * 100}
        legacy = {
            "schema": SCHEMA_VERSION,
            "config": config,
            "meta": {"trials": 1, "tag": "old"},
            "results": [{"index": 0, "value": 1.0, "true_size": 1.0}],
        }
        path = store.path_for(config)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(legacy))
        info = store.artifacts()[0]
        assert info.tag == "old"
        assert info.trials == 1

    def test_enumeration_does_not_fake_hits(self, tmp_path):
        store = ResultsStore(tmp_path)
        _fill(store, count=1)
        for _ in range(3):
            infos = store.artifacts()
        assert not infos[0].hit


class TestHitTracking:
    def test_load_marks_hit(self, tmp_path):
        store = ResultsStore(tmp_path)
        config = {"experiment": "hits"}
        store.save(config, _results())
        info = store.artifacts()[0]
        assert not info.hit
        # ensure the atime bump lands strictly after the mtime
        time.sleep(0.01)
        assert store.load(config) is not None
        info = store.artifacts()[0]
        assert info.hit
        assert info.last_access > info.created

    def test_hit_does_not_touch_mtime(self, tmp_path):
        store = ResultsStore(tmp_path)
        config = {"experiment": "hits"}
        path = store.save(config, _results())
        mtime = path.stat().st_mtime_ns
        store.load(config)
        assert path.stat().st_mtime_ns == mtime

    def test_stats_counts_hits(self, tmp_path):
        store = ResultsStore(tmp_path)
        configs = _fill(store, count=3)
        store.load(configs[0])
        assert store.stats().hit_artifacts == 1


class TestStats:
    def test_totals_and_tags(self, tmp_path):
        store = ResultsStore(tmp_path)
        _fill(store, count=2, tag="a")
        store.save({"other": 1}, _results(5), meta={"trials": 5, "tag": "b"})
        store.save({"untagged": 1}, _results(1))
        st = store.stats()
        assert st.artifacts == 4
        assert st.trials == 3 + 3 + 5 + 0  # untagged save has no trials meta
        assert st.total_bytes == sum(i.size_bytes for i in store.artifacts())
        assert st.by_tag["a"]["artifacts"] == 2
        assert st.by_tag["b"]["trials"] == 5
        assert "(untagged)" in st.by_tag

    def test_stale_schema_counted(self, tmp_path):
        store = ResultsStore(tmp_path)
        _fill(store, count=1)
        path = store.artifacts()[0].path
        artifact = json.loads(path.read_text())
        artifact["schema"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(artifact))
        assert store.stats().stale_schema == 1


class TestGC:
    def test_needs_valid_thresholds(self, tmp_path):
        store = ResultsStore(tmp_path)
        with pytest.raises(ValueError):
            store.gc(max_age_seconds=-1)
        with pytest.raises(ValueError):
            store.gc(max_total_bytes=-1)

    def test_age_eviction(self, tmp_path):
        store = ResultsStore(tmp_path)
        configs = _fill(store, count=2)
        old = store.path_for(configs[0])
        past = time.time() - 3600
        os.utime(old, (past, past))
        report = store.gc(max_age_seconds=60)
        assert [i.path for i in report.evicted] == [old]
        assert report.kept == 1
        assert not old.exists()
        assert store.contains(configs[1])

    def test_size_eviction_oldest_first(self, tmp_path):
        store = ResultsStore(tmp_path)
        configs = _fill(store, count=3)
        # age them oldest -> newest in config order
        for i, config in enumerate(configs):
            t = time.time() - (100 - i)
            os.utime(store.path_for(config), (t, t))
        sizes = [i.size_bytes for i in store.artifacts()]
        budget = sum(sizes) - 1  # must evict exactly the oldest
        report = store.gc(max_total_bytes=budget)
        assert len(report.evicted) == 1
        assert report.evicted[0].path == store.path_for(configs[0])
        assert report.kept == 2
        assert report.kept_bytes <= budget

    def test_zero_budget_clears_store(self, tmp_path):
        store = ResultsStore(tmp_path)
        _fill(store, count=3)
        report = store.gc(max_total_bytes=0)
        assert len(report.evicted) == 3
        assert len(store) == 0
        # fan-out dirs pruned
        assert [p for p in store.root.iterdir() if p.is_dir()] == []

    def test_dry_run_leaves_artifacts_intact(self, tmp_path):
        store = ResultsStore(tmp_path)
        configs = _fill(store, count=3)
        before = {p: p.stat().st_mtime_ns for p in (store.path_for(c) for c in configs)}
        report = store.gc(max_total_bytes=0, dry_run=True)
        assert report.dry_run
        assert len(report.evicted) == 3
        assert report.evicted_bytes > 0
        for path, mtime in before.items():
            assert path.exists()
            assert path.stat().st_mtime_ns == mtime
        # loads still succeed afterwards
        assert all(store.load(c) is not None for c in configs)

    def test_no_policy_is_noop(self, tmp_path):
        store = ResultsStore(tmp_path)
        _fill(store, count=2)
        report = store.gc()
        assert report.evicted == []
        assert report.kept == 2

    def test_age_then_size_composition(self, tmp_path):
        store = ResultsStore(tmp_path)
        configs = _fill(store, count=3)
        old = store.path_for(configs[0])
        past = time.time() - 3600
        os.utime(old, (past, past))
        report = store.gc(max_age_seconds=60, max_total_bytes=0)
        assert len(report.evicted) == 3
        assert report.kept == 0
