"""Observability layer: phase profiling, run journal, trace export.

Covers the guarantees docs/OBSERVABILITY.md makes:

* profiling observes only — results (and stored payloads) are
  bit-identical with or without a journal attached;
* legacy five-method :class:`ProgressReporter` subclasses keep working,
  including hearing partial fallbacks through ``on_fallback``;
* a journal written by a real run validates against the schema;
* the Chrome trace-event export is stable (golden file) and well-formed;
* a mid-batch pool failure keeps completed chunks and re-runs only the
  remainder serially.
"""

from __future__ import annotations

import io
import json
import math
import pathlib
from concurrent.futures import Future

import pytest

import repro.runtime.pool as pool_module
from repro.analysis.obs_report import (
    journal_to_trace,
    read_journal,
    render_obs_summary,
    validate_journal,
)
from repro.runtime import (
    JOURNAL_SCHEMA_VERSION,
    PHASES,
    JournalReporter,
    TeeProgress,
    TrialExecutor,
    run_trials,
)
from repro.runtime.obs import PhaseAccumulator, chunk_profiler, phase
from repro.runtime.pool import SnapshotBackbone
from repro.runtime.progress import ProgressReporter, TelemetryCollector
from repro.runtime.trials import EstimatorSpec, OverlaySpec, TrialSpec, run_chunk
from repro.runtime.api import RuntimeOptions

DATA = pathlib.Path(__file__).parent / "data"


def _static_specs(count=8, seed=31, n=300, l=20):
    overlay = OverlaySpec.heterogeneous(n)
    estimator = EstimatorSpec.sample_collide(l=l)
    return [
        TrialSpec("static_probe", seed, i, overlay=overlay, estimator=estimator)
        for i in range(1, count + 1)
    ]


def _results_key(results):
    return [(r.index, r.stream, r.value, r.true_size) for r in results]


class TestPhaseAccumulator:
    def test_chunk_and_trial_attribution(self):
        acc = PhaseAccumulator()
        with acc.measure("boot"):
            pass
        with acc.measure("estimation", key=(3, 0)):
            pass
        with acc.measure("estimation", key=(3, 0)):
            pass
        assert set(acc.chunk_phases) == {"boot"}
        assert set(acc.trials) == {(3, 0)}
        trial = acc.trials[(3, 0)]
        assert trial["phases"]["estimation"] >= 0.0
        assert trial["elapsed"] >= 0.0
        summary = acc.chunk_summary()
        assert summary["pid"] > 0
        assert summary["phases"] == acc.chunk_phases

    def test_unknown_phase_rejected(self):
        acc = PhaseAccumulator()
        with pytest.raises(ValueError, match="unknown phase"):
            with acc.measure("warp"):
                pass

    def test_phase_is_noop_outside_chunk(self):
        # No accumulator installed: must neither record nor crash.
        with phase("estimation", key=(1, 0)):
            pass

    def test_chunk_profiler_restores_previous(self):
        with chunk_profiler() as outer:
            with phase("boot"):
                pass
            with chunk_profiler() as inner:
                with phase("churn"):
                    pass
            with phase("boot"):
                pass
            assert "churn" not in outer.chunk_phases
            assert set(inner.chunk_phases) == {"churn"}
        assert "boot" in outer.chunk_phases


class TestProfileAttachment:
    def test_run_chunk_attaches_profiles(self):
        results = run_chunk(_static_specs(4))
        assert all(r.profile is not None for r in results)
        # The chunk summary rides on the first result only.
        assert "chunk" in results[0].profile
        assert all("chunk" not in r.profile for r in results[1:])
        summary = results[0].profile["chunk"]
        assert summary["pid"] > 0
        assert "boot" in summary["phases"]
        for r in results:
            assert "estimation" in r.profile["phases"]

    def test_profile_excluded_from_payload_and_equality(self):
        [a] = run_chunk(_static_specs(1))
        assert "profile" not in a.as_dict()
        b = type(a).from_dict(a.as_dict())
        assert b.profile is None
        assert a == b  # profile does not participate in equality

    def test_results_identical_with_and_without_journal(self, tmp_path):
        specs = _static_specs(6)
        plain = run_trials(specs)
        journal = tmp_path / "run.jsonl"
        with JournalReporter(journal) as reporter:
            observed = run_trials(
                specs, runtime=RuntimeOptions.create(workers=2, progress=reporter)
            )
        assert _results_key(plain) == _results_key(observed)


class LegacyReporter(ProgressReporter):
    """A pre-observability reporter overriding only the original five."""

    def __init__(self):
        self.calls = []

    def on_start(self, total, workers):
        self.calls.append(("start", total, workers))

    def on_progress(self, done, total):
        self.calls.append(("progress", done, total))

    def on_cache_hit(self, total):
        self.calls.append(("cache_hit", total))

    def on_fallback(self, reason):
        self.calls.append(("fallback", reason))

    def on_finish(self, done, elapsed):
        self.calls.append(("finish", done))


class TestReporterBackwardCompat:
    def test_five_method_reporter_still_works(self):
        reporter = LegacyReporter()
        TrialExecutor(workers=2, chunk_size=2, progress=reporter).run(
            _static_specs(6)
        )
        kinds = [c[0] for c in reporter.calls]
        assert kinds[0] == "start"
        assert kinds[-1] == "finish"
        assert "progress" in kinds

    def test_partial_fallback_defaults_to_on_fallback(self):
        reporter = LegacyReporter()
        reporter.on_partial_fallback(3, 10, "pool died")
        assert reporter.calls == [("fallback", "pool died")]

    def test_tee_forwards_everything(self):
        a, b = TelemetryCollector(), TelemetryCollector()
        tee = TeeProgress([a, b])
        tee.on_start(4, 2)
        tee.on_chunk_start(0, 2, boundary=1)
        tee.on_chunk_done(0, [])
        tee.on_snapshot_boundary(1, 0.5, "computed")
        tee.on_snapshot_save_error("disk full")
        tee.on_partial_fallback(2, 4, "boom")
        tee.on_finish(4, 1.0)
        assert a.events == b.events
        assert [e["event"] for e in a.events] == [
            "start",
            "chunk_start",
            "chunk_done",
            "snapshot_boundary",
            "snapshot_save_error",
            "partial_fallback",
            "finish",
        ]


class TestJournal:
    def test_real_run_round_trips_through_validation(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        with JournalReporter(journal) as reporter:
            run_trials(
                _static_specs(6),
                runtime=RuntimeOptions.create(workers=2, progress=reporter),
            )
        events = read_journal(journal)
        assert validate_journal(events) == []
        kinds = [e["event"] for e in events]
        assert kinds[0] == "journal"
        assert events[0]["schema"] == JOURNAL_SCHEMA_VERSION
        assert "batch_meta" in kinds
        assert "batch_start" in kinds
        assert "chunk_done" in kinds
        assert kinds.count("trial") == 6
        assert kinds[-1] == "batch_finish"
        # Every in-batch event shares the batch sequence number.
        assert {e["batch"] for e in events if e["event"] != "journal"} == {1}

    def test_cache_hit_closes_batch_scope(self, tmp_path):
        cache = tmp_path / "store"
        specs = _static_specs(3)
        run_trials(specs, runtime=RuntimeOptions.create(cache_dir=cache))
        stream = io.StringIO()
        reporter = JournalReporter(stream)
        run_trials(
            specs,
            runtime=RuntimeOptions.create(cache_dir=cache, progress=reporter),
        )
        events = [json.loads(line) for line in stream.getvalue().splitlines()]
        kinds = [e["event"] for e in events]
        assert kinds == ["journal", "batch_meta", "cache_hit"]
        assert "key" in events[1] and "group" in events[1]

    def test_deterministic_clock_injection(self):
        stream = io.StringIO()
        ticks = iter(range(100))
        reporter = JournalReporter(stream, clock=lambda: float(next(ticks)))
        reporter.on_start(2, 1)
        reporter.on_finish(2, 0.5)
        events = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert [e["ts"] for e in events] == [0.0, 1.0, 2.0]

    def test_journal_appends_across_reporters(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        for _ in range(2):
            with JournalReporter(journal) as reporter:
                reporter.on_start(1, 1)
                reporter.on_finish(1, 0.1)
        events = read_journal(journal)
        assert [e["event"] for e in events].count("journal") == 2
        assert validate_journal(events) == []


class TestTraceExport:
    def test_golden_trace(self):
        events = read_journal(DATA / "golden_journal.jsonl")
        assert validate_journal(events) == []
        trace = journal_to_trace(events)
        golden = json.loads((DATA / "golden_trace.json").read_text())
        assert trace == golden

    def test_trace_is_well_formed(self):
        events = read_journal(DATA / "golden_journal.jsonl")
        trace = journal_to_trace(events)
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        assert trace["displayTimeUnit"] == "ms"
        for entry in trace["traceEvents"]:
            assert entry["ph"] in ("X", "i", "M")
            assert isinstance(entry["pid"], int)
            assert isinstance(entry["tid"], int)
            if entry["ph"] == "X":
                assert isinstance(entry["ts"], int)
                assert entry["dur"] >= 0
            if entry["ph"] == "i":
                assert entry["s"] == "p"

    def test_real_journal_traces(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        with JournalReporter(journal) as reporter:
            run_trials(
                _static_specs(6),
                runtime=RuntimeOptions.create(workers=2, progress=reporter),
            )
        trace = journal_to_trace(read_journal(journal))
        names = {e["name"] for e in trace["traceEvents"]}
        assert any(name.startswith("batch 1:") for name in names)
        assert any(name.startswith("trial ") for name in names)
        # Worker and driver tracks both present.
        pids = {e["pid"] for e in trace["traceEvents"]}
        assert len(pids) >= 2

    def test_summary_renders(self):
        events = read_journal(DATA / "golden_journal.jsonl")
        text = render_obs_summary(events)
        assert "run journal summary" in text
        assert "estimation" in text
        assert "cache hits: 1" in text
        assert "partial fallbacks: 1" in text
        assert "snapshot save errors: 1" in text
        assert text.endswith("\n")
        for name in PHASES:
            if name in ("boot", "restore", "churn", "estimation"):
                assert name in text


class _FailingFakePool:
    """Synchronous stand-in for ProcessPoolExecutor failing one chunk."""

    fail_chunk: int = -1
    submitted: int = 0

    def __init__(self, max_workers=None):
        self.max_workers = max_workers

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def submit(self, fn, *args):
        index = type(self).submitted
        type(self).submitted += 1
        future = Future()
        if index == type(self).fail_chunk:
            future.set_exception(OSError("injected chunk failure"))
        else:
            future.set_result(fn(*args))
        return future


class TestPartialFallback:
    @pytest.fixture()
    def fake_pool(self, monkeypatch):
        _FailingFakePool.submitted = 0
        _FailingFakePool.fail_chunk = 3
        monkeypatch.setattr(pool_module, "ProcessPoolExecutor", _FailingFakePool)
        # Deterministic completion order (futures are already resolved).
        monkeypatch.setattr(pool_module, "as_completed", lambda fs: iter(list(fs)))
        return _FailingFakePool

    def test_completed_chunks_survive_pool_failure(self, fake_pool, monkeypatch):
        executed = []
        real_run_chunk = pool_module.run_chunk

        def counting_run_chunk(specs, snapshot=None):
            executed.append([s.index for s in specs])
            return real_run_chunk(specs, snapshot)

        monkeypatch.setattr(pool_module, "run_chunk", counting_run_chunk)
        specs = _static_specs(12)
        telemetry = TelemetryCollector()
        results = TrialExecutor(
            workers=4, chunk_size=3, progress=telemetry
        ).run(specs)
        # Chunks 0-2 ran in the pool, chunk 3 failed, and only its three
        # trials were re-run serially — nothing was computed twice.
        assert sorted(i for batch in executed for i in batch) == list(range(1, 13))
        assert executed[-1] == [10, 11, 12]

        serial = TrialExecutor(workers=1).run(_static_specs(12))
        assert _results_key(results) == _results_key(serial)

        [event] = [e for e in telemetry.events if e["event"] == "partial_fallback"]
        assert event["done"] == 9
        assert event["total"] == 12
        assert "re-running 3 of 12" in event["reason"]
        # The legacy whole-batch fallback did not fire.
        assert telemetry.count("fallback") == 0

    def test_partial_fallback_reaches_legacy_reporters(self, fake_pool):
        reporter = LegacyReporter()
        results = TrialExecutor(workers=4, chunk_size=3, progress=reporter).run(
            _static_specs(12)
        )
        assert len(results) == 12
        fallbacks = [c for c in reporter.calls if c[0] == "fallback"]
        assert len(fallbacks) == 1
        assert "re-running 3 of 12" in fallbacks[0][1]

    def test_partial_fallback_journaled(self, fake_pool, tmp_path):
        journal = tmp_path / "run.jsonl"
        with JournalReporter(journal) as reporter:
            TrialExecutor(workers=4, chunk_size=3, progress=reporter).run(
                _static_specs(12)
            )
        events = read_journal(journal)
        assert validate_journal(events) == []
        [event] = [e for e in events if e["event"] == "partial_fallback"]
        assert event["done"] == 9 and event["total"] == 12


class _ReadOnlyStore:
    """Store double: never hits, every save fails like a read-only disk."""

    def load_snapshot(self, config):
        return None

    def save_snapshot(self, config, payload, meta=None):
        raise OSError("read-only store")


class TestSnapshotSaveError:
    def _spec(self):
        from repro.churn.models import shrinking_trace
        from repro.runtime import trace_to_payload

        trace = shrinking_trace(120, 0.5, start=1.0, end=4.0, steps=3)
        return TrialSpec(
            "dynamic_probe",
            17,
            1,
            overlay=OverlaySpec.heterogeneous(120),
            estimator=EstimatorSpec.sample_collide(l=10, timer=5.0),
            params={
                "trace": trace_to_payload(trace),
                "time_per_estimation": 1.0,
                "max_degree": 10,
            },
        )

    def test_save_error_reported_once(self):
        telemetry = TelemetryCollector()
        backbone = SnapshotBackbone(self._spec(), _ReadOnlyStore(), telemetry)
        assert backbone.payload_at(0) is not None
        assert backbone.payload_at(2) is not None
        assert telemetry.count("snapshot_save_error") == 1
        outcomes = [
            e["outcome"]
            for e in telemetry.events
            if e["event"] == "snapshot_boundary"
        ]
        assert outcomes == ["computed", "computed"]

    def test_boundary_outcomes_reported(self):
        telemetry = TelemetryCollector()
        backbone = SnapshotBackbone(self._spec(), None, telemetry)
        assert backbone.payload_at(-1) is None
        assert backbone.payload_at(1) is not None
        assert backbone.payload_at(0) is None  # non-monotone: backbone is past it
        outcomes = [
            (e["target"], e["outcome"])
            for e in telemetry.events
            if e["event"] == "snapshot_boundary"
        ]
        assert outcomes == [(-1, "skipped"), (1, "computed"), (0, "skipped")]
        assert all(
            math.isfinite(e["seconds"]) and e["seconds"] >= 0.0
            for e in telemetry.events
            if e["event"] == "snapshot_boundary"
        )


class TestKernelPhase:
    """The ``kernel`` phase under the array graph backend (docs/KERNELS.md)."""

    def _array_specs(self, count=6):
        from repro.runtime.trials import apply_graph_backend

        return apply_graph_backend(_static_specs(count), "array")

    def test_kernel_in_phase_taxonomy(self):
        assert "kernel" in PHASES

    def test_kernel_phase_recorded_in_profile(self):
        results = run_chunk(self._array_specs())
        chunk = results[0].profile["chunk"]
        assert chunk["phases"].get("kernel", 0.0) > 0.0
        # Kernel time nests inside the trial-attributed estimation spans:
        # it is a subset of estimation seconds, not an additional cost.
        estimation = sum(
            r.profile["phases"].get("estimation", 0.0) for r in results
        )
        assert chunk["phases"]["kernel"] <= estimation

    def test_dict_backend_records_no_kernel_phase(self):
        results = run_chunk(_static_specs(6))
        chunk = results[0].profile["chunk"]
        assert "kernel" not in chunk["phases"]

    def test_phase_kernel_in_summary_metrics(self):
        from repro.runtime.provenance import PHASE_METRICS, summarize_results

        assert "phase_kernel" in PHASE_METRICS
        metrics = summarize_results(run_chunk(self._array_specs()))
        assert metrics["phase_kernel"]["mean"] > 0.0

    def test_array_backend_journal_validates(self, tmp_path):
        journal = tmp_path / "array.jsonl"
        with JournalReporter(journal) as reporter:
            run_trials(
                self._array_specs(),
                runtime=RuntimeOptions.create(workers=2, progress=reporter),
            )
        events = read_journal(journal)
        assert validate_journal(events) == []
        chunk_phases = [
            e["phases"] for e in events if e["event"] == "chunk_done"
        ]
        assert any("kernel" in p for p in chunk_phases)
        summary = render_obs_summary(events)
        assert "kernel" in summary
