"""Tests for the trial executor: chunking, parallel dispatch, fallbacks."""

from __future__ import annotations

import pytest

from repro.core.sample_collide import SampleCollideEstimator
from repro.runtime.pool import TrialExecutor, chunk_specs
from repro.runtime.progress import TelemetryCollector
from repro.runtime.trials import EstimatorSpec, OverlaySpec, TrialSpec
from repro.sim.rng import RngHub


def _static_specs(count=8, seed=31, n=300, l=20):
    overlay = OverlaySpec.heterogeneous(n)
    estimator = EstimatorSpec.sample_collide(l=l)
    return [
        TrialSpec("static_probe", seed, i, overlay=overlay, estimator=estimator)
        for i in range(1, count + 1)
    ]


class TestChunking:
    def test_chunks_preserve_order_and_cover(self):
        specs = _static_specs(7)
        chunks = chunk_specs(specs, 3)
        assert [len(c) for c in chunks] == [3, 3, 1]
        assert [s.index for c in chunks for s in c] == list(range(1, 8))

    def test_bad_chunk_size(self):
        with pytest.raises(ValueError):
            chunk_specs(_static_specs(3), 0)
        with pytest.raises(ValueError):
            TrialExecutor(chunk_size=0)


class TestExecution:
    def test_empty_batch(self):
        assert TrialExecutor().run([]) == []

    def test_serial_vs_parallel_identical(self):
        """The headline determinism guarantee: same seeds → identical
        series at any worker count."""
        specs = _static_specs(10)
        serial = TrialExecutor(workers=1).run(specs)
        parallel = TrialExecutor(workers=3, chunk_size=2).run(specs)
        assert [(r.index, r.value, r.true_size) for r in serial] == [
            (r.index, r.value, r.true_size) for r in parallel
        ]

    def test_results_sorted_by_index(self):
        results = TrialExecutor(workers=2, chunk_size=3).run(_static_specs(9))
        assert [r.index for r in results] == list(range(1, 10))

    def test_live_objects_fall_back_to_serial(self):
        """Closure-based specs cannot be shipped to workers; the executor
        must degrade gracefully instead of crashing."""
        graph = OverlaySpec.heterogeneous(300).build(RngHub(31))
        factory = lambda g, h: SampleCollideEstimator(g, l=20, rng=h.stream("sc"))
        live = [
            TrialSpec("static_probe", 31, i, overlay=graph, estimator=factory)
            for i in range(1, 11)
        ]
        telemetry = TelemetryCollector()
        results = TrialExecutor(workers=4, progress=telemetry).run(live)
        assert telemetry.count("fallback") == 1
        spec_results = TrialExecutor(workers=1).run(_static_specs(10))
        assert [(r.index, r.value) for r in results] == [
            (r.index, r.value) for r in spec_results
        ]

    def test_progress_callbacks_fire(self):
        telemetry = TelemetryCollector()
        TrialExecutor(workers=2, chunk_size=2, progress=telemetry).run(
            _static_specs(6)
        )
        assert telemetry.count("start") == 1
        assert telemetry.count("finish") == 1
        assert telemetry.count("progress") >= 1
