"""Cross-module property tests: the full pipeline under random churn.

Hypothesis drives arbitrary-but-valid churn schedules against live
estimators and checks the system-level invariants: graphs stay structurally
sound, estimators either produce positive finite estimates or raise
:class:`EstimatorError` (never crash, never return garbage), message
accounting only moves forward, and aggregation's mass stays within the
[0, 1] envelope (departures may destroy mass, nothing may create it).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import AggregationProtocol
from repro.core.base import EstimatorError
from repro.core.hops_sampling import HopsSamplingEstimator
from repro.core.sample_collide import SampleCollideEstimator
from repro.overlay.builders import heterogeneous_random
from repro.overlay.membership import MembershipPolicy

# churn step: (+k joins) or (-k leaves), k in 1..40
_churn_steps = st.lists(st.integers(-40, 40).filter(lambda k: k != 0), max_size=8)


def _apply_churn(graph, policy, steps):
    for k in steps:
        if k > 0:
            policy.join(k)
        else:
            policy.leave(min(-k, max(graph.size - 1, 0)))


@given(_churn_steps, st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_graph_invariants_survive_any_churn(steps, seed):
    graph = heterogeneous_random(150, rng=seed)
    policy = MembershipPolicy(graph, rng=seed + 1)
    _apply_churn(graph, policy, steps)
    graph.check_invariants()
    assert graph.size >= 1


@given(_churn_steps, st.integers(0, 2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_sample_collide_sound_after_any_churn(steps, seed):
    graph = heterogeneous_random(150, rng=seed)
    policy = MembershipPolicy(graph, rng=seed + 1)
    _apply_churn(graph, policy, steps)
    try:
        est = SampleCollideEstimator(graph, l=10, rng=seed + 2).estimate()
    except EstimatorError:
        return  # a failed probe is a legal outcome on a degraded overlay
    assert np.isfinite(est.value) and est.value > 0
    assert est.messages >= est.meta["draws"]  # every draw cost >= 1 reply


@given(_churn_steps, st.integers(0, 2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_hops_sampling_sound_after_any_churn(steps, seed):
    graph = heterogeneous_random(150, rng=seed)
    policy = MembershipPolicy(graph, rng=seed + 1)
    _apply_churn(graph, policy, steps)
    try:
        est = HopsSamplingEstimator(graph, rng=seed + 2).estimate()
    except EstimatorError:
        return
    assert np.isfinite(est.value) and est.value >= 1.0
    assert 1 <= est.meta["reached"] <= graph.size


@given(_churn_steps, st.integers(0, 2**31 - 1), st.integers(1, 12))
@settings(max_examples=20, deadline=None)
def test_aggregation_mass_envelope_under_interleaved_churn(steps, seed, rounds_between):
    """Mass can only be destroyed (by departures), never created."""
    graph = heterogeneous_random(150, rng=seed)
    policy = MembershipPolicy(graph, rng=seed + 1)
    proto = AggregationProtocol(graph, rng=seed + 2)
    proto.start_epoch()
    mass = proto.total_mass()
    assert mass == 1.0
    for k in steps:
        proto.run_rounds(rounds_between)
        if k > 0:
            policy.join(k)
        else:
            policy.leave(min(-k, max(graph.size - 1, 0)))
        proto.run_round()
        new_mass = proto.total_mass()
        assert new_mass <= mass + 1e-9  # monotone non-increasing
        assert new_mass >= -1e-12
        mass = new_mass


@given(st.integers(0, 2**31 - 1))
@settings(max_examples=15, deadline=None)
def test_estimators_deterministic_across_replays(seed):
    """Same seed, same overlay => bit-identical estimates and costs."""
    results = []
    for _ in range(2):
        graph = heterogeneous_random(200, rng=seed)
        sc = SampleCollideEstimator(graph, l=15, rng=seed + 1).estimate()
        hops = HopsSamplingEstimator(graph, rng=seed + 2).estimate()
        results.append((sc.value, sc.messages, hops.value, hops.messages))
    assert results[0] == results[1]
