"""Shared fixtures for the test-suite.

Graph fixtures are module-scoped where construction is the dominant cost
and the tests only read; mutating tests build their own graphs.
"""

from __future__ import annotations

import os
import sys

import pytest

# Make the shared statistical helpers (`import statcheck`) importable from
# every test directory — subdirectories have no __init__.py, so pytest only
# puts each test file's own directory on sys.path.
sys.path.insert(0, os.path.dirname(__file__))

from repro.experiments.config import Scale
from repro.overlay.builders import heterogeneous_random, scale_free
from repro.overlay.graph import OverlayGraph
from repro.sim.rng import RngHub


@pytest.fixture
def hub() -> RngHub:
    """A deterministic RNG hub."""
    return RngHub(1234)


@pytest.fixture
def tiny_graph() -> OverlayGraph:
    """A hand-built 5-node graph: path 0-1-2-3 plus edge 1-4."""
    g = OverlayGraph(nodes=range(5), edges=[(0, 1), (1, 2), (2, 3), (1, 4)])
    return g


@pytest.fixture(scope="module")
def het_graph() -> OverlayGraph:
    """A 2,000-node heterogeneous overlay (read-only in tests)."""
    return heterogeneous_random(2_000, rng=42)


@pytest.fixture(scope="module")
def small_het_graph() -> OverlayGraph:
    """A 500-node heterogeneous overlay (read-only in tests)."""
    return heterogeneous_random(500, rng=7)


@pytest.fixture(scope="module")
def sf_graph() -> OverlayGraph:
    """A 2,000-node scale-free overlay (read-only in tests)."""
    return scale_free(2_000, m=3, rng=11)


@pytest.fixture
def tiny_scale() -> Scale:
    """A minuscule experiment scale so figure functions run in <1s each."""
    return Scale(
        name="tiny",
        n_100k=400,
        n_1m=600,
        static_estimations=5,
        static_estimations_1m=4,
        aggregation_rounds=25,
        aggregation_horizon=80,
        dynamic_estimations=8,
        restart_interval=20,
    )
