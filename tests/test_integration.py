"""Cross-module integration tests: the paper's headline claims, end to end.

These run the real pipeline (build overlay → churn → estimate → account
messages) at reduced scale and assert the *relationships* the paper
reports, rather than any single number.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AggregationProtocol,
    ChurnScheduler,
    HopsSamplingEstimator,
    MessageMeter,
    RandomTourEstimator,
    SampleCollideEstimator,
    heterogeneous_random,
    scale_free,
    shrinking_trace,
)
from repro.core.aggregation import AggregationMonitor
from repro.overlay.views import largest_component_fraction
from repro.sim.rounds import RoundDriver


@pytest.fixture(scope="module")
def overlay():
    return heterogeneous_random(3_000, rng=101)


class TestHeadToHeadAccuracy:
    """§IV-C orderings on a single shared overlay."""

    def test_accuracy_ordering(self, overlay):
        n = overlay.size
        agg_err = abs(
            AggregationProtocol(overlay, rng=1).estimate(rounds=40).value - n
        ) / n
        sc_vals = [
            SampleCollideEstimator(overlay, l=200, rng=s).estimate().value
            for s in range(10)
        ]
        sc_err = abs(np.mean(sc_vals) - n) / n
        hops_vals = [
            HopsSamplingEstimator(overlay, rng=s).estimate().value for s in range(10)
        ]
        hops_err = abs(np.mean(hops_vals) - n) / n
        # Aggregation (exact) < S&C last10 (few %) < Hops last10 (biased).
        assert agg_err < 0.01
        assert agg_err < sc_err < hops_err

    def test_hops_biased_sc_not(self, overlay):
        n = overlay.size
        sc_q = [
            SampleCollideEstimator(overlay, l=100, rng=s).estimate().quality(n)
            for s in range(15)
        ]
        hops_q = [
            HopsSamplingEstimator(overlay, rng=s).estimate().quality(n)
            for s in range(15)
        ]
        assert abs(np.mean(sc_q) - 100) < 8
        assert np.mean(hops_q) < 95  # systematic under-estimate


class TestOverheadOrdering:
    """Table I's per-estimation cost ordering on one overlay."""

    def test_full_ordering(self, overlay):
        sc_one = SampleCollideEstimator(overlay, l=200, rng=3).estimate().messages
        hops_one = HopsSamplingEstimator(overlay, rng=3).estimate().messages
        agg = AggregationProtocol(overlay, rng=3).estimate(rounds=50).messages
        # last10runs = 10x one-shot costs
        sc_ten, hops_ten = 10 * sc_one, 10 * hops_one
        assert hops_ten < agg  # Hops last10 cheaper than Aggregation
        assert sc_one < sc_ten
        assert agg == 2 * 50 * overlay.size  # exact formula

    def test_aggregation_least_flexible(self, overlay):
        # S&C can trade accuracy for cost via l; Aggregation's cost is fixed
        # by N and rounds regardless of any parameter.
        cheap = SampleCollideEstimator(overlay, l=10, rng=4).estimate().messages
        precise = SampleCollideEstimator(overlay, l=200, rng=4).estimate().messages
        assert cheap < precise / 2.5


class TestScaleFreeRobustness:
    """§IV-C-g: degree heterogeneity must not bias S&C or Aggregation."""

    def test_sc_unbiased_on_scale_free(self):
        g = scale_free(2_000, m=3, rng=55)
        vals = [
            SampleCollideEstimator(g, l=100, rng=s).estimate().value
            for s in range(15)
        ]
        assert np.mean(vals) == pytest.approx(g.size, rel=0.08)

    def test_agg_exact_on_scale_free(self):
        g = scale_free(2_000, m=3, rng=56)
        est = AggregationProtocol(g, rng=57).estimate(rounds=45)
        assert est.value == pytest.approx(g.size, rel=0.02)

    def test_hops_bias_amplified_on_scale_free(self):
        g_rand = heterogeneous_random(2_000, rng=58)
        g_sf = scale_free(2_000, m=3, rng=59)
        q_rand = np.mean(
            [HopsSamplingEstimator(g_rand, rng=s).estimate().quality(g_rand.size)
             for s in range(12)]
        )
        q_sf = np.mean(
            [HopsSamplingEstimator(g_sf, rng=s).estimate().quality(g_sf.size)
             for s in range(12)]
        )
        assert q_sf < q_rand  # the paper's amplified under-estimation


class TestDynamicTracking:
    """§IV-D: probes track a shrinking overlay; aggregation needs restarts."""

    def test_sc_tracks_shrinkage(self):
        g = heterogeneous_random(2_000, rng=60)
        trace = shrinking_trace(2_000, 0.5, start=1, end=30, steps=30)
        sched = ChurnScheduler(g, trace, rng=61)
        errs = []
        for i in range(1, 31):
            sched.advance_to(i)
            est = SampleCollideEstimator(g, l=100, rng=100 + i).estimate()
            errs.append(abs(est.value - g.size) / g.size)
        assert np.mean(errs) < 0.15
        assert g.size == 1_000

    def test_aggregation_monitor_with_restarts_tracks_shrinkage(self):
        # §IV-D's remedy for shrinkage: periodic restarts, with epochs long
        # enough for the epidemic to converge on the *degraded* overlay
        # (40% unrepaired removals roughly halve the mean degree, slowing
        # convergence — hence 45 rounds here, not the static-optimum ~25).
        g = heterogeneous_random(1_500, rng=62)
        trace = shrinking_trace(1_500, 0.4, start=1, end=150, steps=15)
        driver = RoundDriver()
        ChurnScheduler(g, trace, rng=63).attach(driver)
        monitor = AggregationMonitor(g, restart_interval=45, rng=64)
        monitor.attach(driver)
        driver.run(250)
        # After churn ends, a full epoch converges to the size of the
        # initiator's connected component.
        final = monitor.epoch_estimates[-1][1]
        expected = largest_component_fraction(g) * g.size
        assert final == pytest.approx(expected, rel=0.1)

    def test_tight_epochs_underestimate_on_degraded_overlay(self):
        # The flip side the paper observes in Fig 17: when the epoch is too
        # short for the degraded overlay, estimates fall short of the truth.
        g = heterogeneous_random(1_500, rng=62)
        trace = shrinking_trace(1_500, 0.4, start=1, end=150, steps=15)
        driver = RoundDriver()
        ChurnScheduler(g, trace, rng=63).attach(driver)
        monitor = AggregationMonitor(g, restart_interval=25, rng=64)
        monitor.attach(driver)
        driver.run(250)
        final = monitor.epoch_estimates[-1][1]
        assert final < largest_component_fraction(g) * g.size

    def test_heavy_shrinkage_degrades_overlay_and_aggregation(self):
        # Push removals far enough to fragment the unrepai­red overlay; the
        # epoch estimate then reflects the initiator's component, not N.
        g = heterogeneous_random(2_000, rng=65)
        trace = shrinking_trace(2_000, 0.85, start=1, end=10, steps=10)
        sched = ChurnScheduler(g, trace, rng=66)
        sched.advance_to(10)
        assert largest_component_fraction(g) < 0.95
        proto = AggregationProtocol(g, rng=67)
        est = proto.estimate(rounds=40)
        assert est.value < g.size  # undercounts the fragmented overlay


class TestSharedMeter:
    def test_meter_aggregates_across_algorithms(self, overlay):
        meter = MessageMeter()
        e1 = SampleCollideEstimator(overlay, l=20, rng=8, meter=meter).estimate()
        e2 = HopsSamplingEstimator(overlay, rng=8, meter=meter).estimate()
        e3 = RandomTourEstimator(overlay, rng=8, meter=meter).estimate()
        assert meter.total == e1.messages + e2.messages + e3.messages
