"""The docs link checker: repo docs are clean, and breakage is detected."""

from __future__ import annotations

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "scripts"))

from check_links import check_file, default_docs, iter_links  # noqa: E402


def test_repo_docs_have_no_broken_links():
    docs = default_docs(REPO_ROOT)
    assert any(d.name == "README.md" for d in docs)
    assert any(d.name == "ARCHITECTURE.md" for d in docs)
    assert any(d.name == "EXPERIMENTS.md" for d in docs)
    assert any(d.name == "TRENDS.md" for d in docs)
    problems = [p for d in docs for p in check_file(d)]
    assert problems == []


def test_detects_broken_relative_link(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text("see [missing](nope/gone.md) and [ok](other.md)")
    (tmp_path / "other.md").write_text("hi")
    problems = check_file(doc)
    assert len(problems) == 1
    assert "nope/gone.md" in problems[0]


def test_skips_external_and_anchor_links(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text(
        "[a](https://example.org/x) [b](#section) [c](mailto:x@y.z)"
    )
    assert check_file(doc) == []


def test_anchor_suffix_stripped(tmp_path):
    doc = tmp_path / "doc.md"
    (tmp_path / "other.md").write_text("hi")
    doc.write_text("[ok](other.md#some-heading)")
    assert check_file(doc) == []


def test_iter_links_with_titles():
    assert list(iter_links('[x](a.md "Title") and [y](b.md)')) == ["a.md", "b.md"]
