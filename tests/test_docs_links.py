"""The docs link checker: repo docs are clean, and breakage is detected."""

from __future__ import annotations

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "scripts"))

from check_links import (  # noqa: E402
    check_file,
    default_docs,
    heading_anchors,
    iter_links,
    slugify,
)


def test_repo_docs_have_no_broken_links():
    docs = default_docs(REPO_ROOT)
    assert any(d.name == "README.md" for d in docs)
    assert any(d.name == "ARCHITECTURE.md" for d in docs)
    assert any(d.name == "EXPERIMENTS.md" for d in docs)
    assert any(d.name == "SNAPSHOTS.md" for d in docs)
    assert any(d.name == "TRENDS.md" for d in docs)
    problems = [p for d in docs for p in check_file(d)]
    assert problems == []


def test_detects_broken_relative_link(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text("see [missing](nope/gone.md) and [ok](other.md)")
    (tmp_path / "other.md").write_text("hi")
    problems = check_file(doc)
    assert len(problems) == 1
    assert "nope/gone.md" in problems[0]


def test_skips_external_links(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text("[a](https://example.org/x) [c](mailto:x@y.z)")
    assert check_file(doc) == []


def test_pure_anchor_validated_against_own_headings(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text("# My Section\n\n[good](#my-section) [bad](#missing)\n")
    problems = check_file(doc)
    assert len(problems) == 1
    assert "#missing" in problems[0]


def test_anchor_suffix_validated_against_target_headings(tmp_path):
    doc = tmp_path / "doc.md"
    (tmp_path / "other.md").write_text("## Some Heading\n")
    doc.write_text("[ok](other.md#some-heading) [bad](other.md#nope)")
    problems = check_file(doc)
    assert len(problems) == 1
    assert "other.md#nope" in problems[0]


def test_anchor_on_non_markdown_target_ignored(tmp_path):
    doc = tmp_path / "doc.md"
    (tmp_path / "data.json").write_text("{}")
    doc.write_text("[data](data.json#whatever)")
    assert check_file(doc) == []


def test_slugify_matches_github_rules():
    assert slugify("The snapshot protocol: O(horizon) churn replay") == (
        "the-snapshot-protocol-ohorizon-churn-replay"
    )
    assert slugify("Trend tracking and the regression gate") == (
        "trend-tracking-and-the-regression-gate"
    )
    assert slugify("`code` and *emphasis*") == "code-and-emphasis"
    # GitHub keeps underscores in anchors (snake_case function headings)
    assert slugify("snapshot_config") == "snapshot_config"


def test_heading_anchors_collects_all_levels():
    anchors = heading_anchors("# Top\n\n## Mid Level\n\ntext\n\n### Deep-Dive\n")
    assert anchors == {"top", "mid-level", "deep-dive"}


def test_heading_anchors_suffix_duplicates_like_github():
    anchors = heading_anchors("## Setup\n\ntext\n\n## Setup\n\n## Setup\n")
    assert anchors == {"setup", "setup-1", "setup-2"}


def test_heading_anchors_ignore_fenced_code_blocks():
    text = "# Real\n\n```sh\n# not a heading\nls\n```\n\n## Also Real\n"
    assert heading_anchors(text) == {"real", "also-real"}


def test_iter_links_with_titles():
    assert list(iter_links('[x](a.md "Title") and [y](b.md)')) == ["a.md", "b.md"]
