"""CLI 'all' target, isolated from the real (slow) experiments by stubbing
the experiment registries."""

from __future__ import annotations

import pytest

from repro.analysis.curves import FigureResult, TableResult
from repro.experiments import cli


@pytest.fixture
def stub_experiments(monkeypatch):
    calls = []

    def fake_figure(scale=None, seed=None):
        calls.append(("figX", scale, seed))
        fig = FigureResult("figX", "stub", "x", "y")
        fig.add("c", [1, 2], [3, 4])
        return fig

    def fake_table(scale=None, seed=None):
        calls.append(("tabX", scale, seed))
        t = TableResult("tabX", "stub", columns=["a"])
        t.add_row(a=1)
        return t

    monkeypatch.setattr(cli, "FIGURES", {"figX": fake_figure})
    monkeypatch.setattr(cli, "TABLES", {"tabX": fake_table})
    return calls


class TestAllTarget:
    def test_all_runs_every_experiment(self, stub_experiments, capsys):
        # build_parser reads the (patched) registries at call time, so the
        # stub targets parse like real ones
        assert cli.main(["run", "all", "--scale", "small", "--seed", "7"]) == 0
        ran = [c[0] for c in stub_experiments]
        assert ran == ["figX", "tabX"]
        assert all(c[1] == "small" and c[2] == 7 for c in stub_experiments)
        out = capsys.readouterr().out
        assert "figX" in out and "tabX" in out

    def test_csv_written_for_each(self, stub_experiments, tmp_path, capsys):
        argv = ["run", "all", "--csv-dir", str(tmp_path), "--quiet"]
        assert cli.main(argv) == 0
        assert (tmp_path / "figX.csv").exists()
        assert (tmp_path / "tabX.csv").exists()
