"""CLI 'all' target, isolated from the real (slow) experiments by stubbing
the experiment registries."""

from __future__ import annotations

import pytest

from repro.analysis.curves import FigureResult, TableResult
from repro.experiments import cli


@pytest.fixture
def stub_experiments(monkeypatch):
    calls = []

    def fake_figure(scale=None, seed=None):
        calls.append(("figX", scale, seed))
        fig = FigureResult("figX", "stub", "x", "y")
        fig.add("c", [1, 2], [3, 4])
        return fig

    def fake_table(scale=None, seed=None):
        calls.append(("tabX", scale, seed))
        t = TableResult("tabX", "stub", columns=["a"])
        t.add_row(a=1)
        return t

    monkeypatch.setattr(cli, "FIGURES", {"figX": fake_figure})
    monkeypatch.setattr(cli, "TABLES", {"tabX": fake_table})
    return calls


class TestAllTarget:
    def test_all_runs_every_experiment(self, stub_experiments, capsys):
        # the parser still validates against the real registry, so drive
        # _run_one through main's loop with a synthetic namespace
        parser_args = cli.build_parser().parse_args(["list"])  # placeholder
        parser_args.target = "all"
        parser_args.scale = "small"
        parser_args.seed = 7
        parser_args.csv_dir = None
        parser_args.quiet = False
        for name in sorted(cli.FIGURES) + sorted(cli.TABLES):
            cli._run_one(name, parser_args)
        ran = [c[0] for c in stub_experiments]
        assert ran == ["figX", "tabX"]
        assert all(c[1] == "small" and c[2] == 7 for c in stub_experiments)
        out = capsys.readouterr().out
        assert "figX" in out and "tabX" in out

    def test_csv_written_for_each(self, stub_experiments, tmp_path, capsys):
        args = cli.build_parser().parse_args(["list"])
        args.target = "all"
        args.scale = None
        args.seed = None
        args.csv_dir = tmp_path
        args.quiet = True
        for name in sorted(cli.FIGURES) + sorted(cli.TABLES):
            cli._run_one(name, args)
        assert (tmp_path / "figX.csv").exists()
        assert (tmp_path / "tabX.csv").exists()
