"""End-to-end tests of the `repro-experiment cache ls|stats|gc` family."""

from __future__ import annotations

import os
import time

import pytest

from repro.experiments.cli import _format_size, _parse_size, main


@pytest.fixture
def warm_cache(tmp_path, monkeypatch):
    """A store holding one ablation's grid (one artifact per mode)."""
    monkeypatch.setenv("REPRO_SCALE", "small")
    cache = tmp_path / "cache"
    argv = ["run", "ablation_hops_oracle", "--cache-dir", str(cache), "--quiet"]
    assert main(argv) == 0
    assert main(argv) == 0  # rerun: pure cache hits
    return cache


class TestSizeParsing:
    def test_units(self):
        assert _parse_size("1500") == 1500
        assert _parse_size("2k") == 2000
        assert _parse_size("1.5MB") == 1_500_000
        assert _parse_size("1GiB") == 2**30

    def test_rejects_garbage(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_size("five bytes")

    def test_format_roundtrip_readable(self):
        assert _format_size(999) == "999B"
        assert _format_size(2_100) == "2.1kB"
        assert _format_size(3_400_000) == "3.4MB"


class TestCacheLs:
    def test_lists_artifacts_with_tags(self, warm_cache, capsys):
        assert main(["cache", "ls", "--cache-dir", str(warm_cache)]) == 0
        out = capsys.readouterr().out
        assert "ablation_hops_oracle" in out
        assert "2 artifact(s)" in out
        assert "yes" in out  # the rerun registered as a hit

    def test_empty_store(self, tmp_path, capsys):
        assert main(["cache", "ls", "--cache-dir", str(tmp_path)]) == 0
        assert "empty store" in capsys.readouterr().out

    def test_env_var_default(self, warm_cache, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(warm_cache))
        assert main(["cache", "ls"]) == 0
        assert "ablation_hops_oracle" in capsys.readouterr().out

    def test_no_dir_errors(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        with pytest.raises(SystemExit):
            main(["cache", "ls"])


class TestCacheStats:
    def test_reports_totals_and_tags(self, warm_cache, capsys):
        assert main(["cache", "stats", "--cache-dir", str(warm_cache)]) == 0
        out = capsys.readouterr().out
        assert "artifacts:      2" in out
        assert "cached trials:  20" in out
        assert "ablation_hops_oracle" in out
        assert "hit artifacts:  2" in out

    def test_reports_snapshot_bytes_separately(self, tmp_path, capsys):
        from repro.churn.models import shrinking_trace
        from repro.runtime import (
            EstimatorSpec,
            OverlaySpec,
            ResultsStore,
            RuntimeOptions,
            TrialSpec,
            run_trials,
            trace_to_payload,
        )

        params = {
            "trace": trace_to_payload(
                shrinking_trace(200, 0.5, start=1.0, end=8.0, steps=7)
            ),
            "time_per_estimation": 1.0,
            "max_degree": 10,
        }
        specs = [
            TrialSpec(
                "multi_probe",
                5,
                i,
                overlay=OverlaySpec.heterogeneous(200),
                estimator=EstimatorSpec.sample_collide(l=10, timer=4.0),
                params=params,
            )
            for i in range(1, 9)
        ]
        run_trials(
            specs,
            runtime=RuntimeOptions(
                workers=2, chunk_size=2, store=ResultsStore(tmp_path)
            ),
        )
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "snapshots:" in out
        assert "results:" in out
        assert "snapshot:multi_probe" in out


class TestCacheGC:
    def test_dry_run_deletes_nothing(self, warm_cache, capsys):
        before = sorted(warm_cache.glob("*/*.json"))
        assert main(
            ["cache", "gc", "--cache-dir", str(warm_cache), "--max-size", "0",
             "--dry-run"]
        ) == 0
        out = capsys.readouterr().out
        assert "would evict 2 artifact(s)" in out
        assert sorted(warm_cache.glob("*/*.json")) == before

    def test_age_gc_evicts_old_artifacts(self, warm_cache, capsys):
        artifacts = sorted(warm_cache.glob("*/*.json"))
        past = time.time() - 10 * 86400
        os.utime(artifacts[0], (past, past))
        assert main(
            ["cache", "gc", "--cache-dir", str(warm_cache), "--max-age-days", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "evicted 1 artifact(s)" in out
        assert not artifacts[0].exists()
        assert artifacts[1].exists()

    def test_size_gc_respects_budget(self, warm_cache):
        assert main(
            ["cache", "gc", "--cache-dir", str(warm_cache), "--max-size", "0"]
        ) == 0
        assert list(warm_cache.glob("*/*.json")) == []

    def test_policy_required(self, warm_cache):
        with pytest.raises(SystemExit):
            main(["cache", "gc", "--cache-dir", str(warm_cache)])

    def test_gc_then_rerun_recomputes(self, warm_cache, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert main(
            ["cache", "gc", "--cache-dir", str(warm_cache), "--max-size", "0"]
        ) == 0
        argv = [
            "run", "ablation_hops_oracle", "--cache-dir", str(warm_cache), "--quiet"
        ]
        assert main(argv) == 0
        assert len(list(warm_cache.glob("*/*.json"))) == 2
