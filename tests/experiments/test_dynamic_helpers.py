"""Tests for the dynamic-experiment internals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.dynamic import _probe_trace


class TestProbeTrace:
    def test_catastrophic_schedule(self):
        trace = _probe_trace("catastrophic", 1_000, 90)
        times = [e.time for e in trace]
        assert times == [30.0, 60.0]
        # two sequential -25%: 1000 -> 750 -> 562 (187.5 rounds to 188)
        assert trace.net_change(1_000) == 562

    def test_growing_total(self):
        trace = _probe_trace("growing", 1_000, 50)
        assert trace.net_change(1_000) == 1_500

    def test_shrinking_total(self):
        trace = _probe_trace("shrinking", 1_000, 50)
        assert trace.net_change(1_000) == 500

    def test_events_within_horizon(self):
        for kind in ("growing", "shrinking"):
            trace = _probe_trace(kind, 500, 40)
            assert all(1.0 <= e.time <= 40.0 for e in trace)

    def test_unknown_scenario(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            _probe_trace("exploding", 100, 10)


class TestDynamicFigureInternals:
    def test_streams_share_true_size(self, tiny_scale):
        """All three estimation streams in a dynamic figure observe the
        same churning overlay (same Real curve)."""
        from repro.experiments.dynamic import fig10_sc_growing

        fig = fig10_sc_growing(scale=tiny_scale)
        real = fig.curve("Real network size")
        for k in (1, 2, 3):
            est = fig.curve(f"Estimation #{k}")
            assert np.array_equal(est.x, real.x)

    def test_streams_are_distinct(self, tiny_scale):
        from repro.experiments.dynamic import fig10_sc_growing

        fig = fig10_sc_growing(scale=tiny_scale)
        e1 = fig.curve("Estimation #1").y
        e2 = fig.curve("Estimation #2").y
        assert not np.array_equal(e1, e2)
