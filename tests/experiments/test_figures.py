"""Smoke + shape tests for every figure/table function at a tiny scale.

Each test asserts the *structure* the paper's plot needs (curve names,
lengths, axes) plus the loosest version of the qualitative claim that is
stable at a 400-node scale.  The full quantitative shape checks live in
``tests/test_integration.py`` and the benchmarks.
"""

from __future__ import annotations

import numpy as np
import pytest
import statcheck

from repro.experiments import FIGURES, TABLES
from repro.analysis.curves import FigureResult, TableResult


ALL_FIGURES = sorted(FIGURES)
ALL_TABLES = sorted(TABLES)


@pytest.mark.parametrize("name", ALL_FIGURES)
def test_every_figure_runs_and_is_wellformed(name, tiny_scale):
    fig = FIGURES[name](scale=tiny_scale)
    assert isinstance(fig, FigureResult)
    assert fig.curves, f"{name} produced no curves"
    for curve in fig.curves:
        assert len(curve) > 0, f"{name}/{curve.label} is empty"
    assert fig.params.get("scale") == "tiny" or "scale" in fig.params
    csv = fig.to_csv()
    assert csv.startswith("figure,curve,x,y")


@pytest.mark.parametrize("name", ALL_TABLES)
def test_every_table_runs_and_is_wellformed(name, tiny_scale):
    table = TABLES[name](scale=tiny_scale)
    assert isinstance(table, TableResult)
    assert table.rows, f"{name} produced no rows"
    assert table.to_csv().count("\n") == len(table.rows) + 1


class TestStaticFigureShapes:
    def test_fig1_curve_names(self, tiny_scale):
        fig = FIGURES["fig1"](scale=tiny_scale)
        assert {c.label for c in fig.curves} == {"one shot", "last 10 runs"}

    def test_fig1_oneshot_near_100(self, tiny_scale):
        fig = FIGURES["fig1"](scale=tiny_scale)
        assert fig.curve("one shot").tail_mean(1.0) == pytest.approx(100, abs=35)

    def test_fig3_underestimates(self, tiny_scale):
        fig = FIGURES["fig3"](scale=tiny_scale)
        assert fig.curve("one shot").tail_mean(1.0) < 110

    def test_fig5_converges_to_100(self, tiny_scale):
        # 25 rounds at 400 nodes is partial convergence: individual epochs
        # land within a few percent of truth, not within rounding.
        fig = FIGURES["fig5"](scale=tiny_scale)
        for c in fig.curves:
            statcheck.assert_within(c.final(), 100, abs_tol=4, label=c.label)

    def test_fig5_three_runs(self, tiny_scale):
        fig = FIGURES["fig5"](scale=tiny_scale)
        assert len(fig.curves) == 3

    def test_fig7_histogram_covers_all_nodes(self, tiny_scale):
        fig = FIGURES["fig7"](scale=tiny_scale)
        hist = fig.curve("Scale Free Distribution")
        assert hist.y.sum() == fig.params["n"]
        assert fig.params["min_degree"] >= 3

    def test_fig8_has_three_algorithms(self, tiny_scale):
        fig = FIGURES["fig8"](scale=tiny_scale)
        assert {c.label for c in fig.curves} == {
            "Aggregation",
            "Sample&collide",
            "HopsSampling",
        }

    def test_fig18_single_noisy_curve(self, tiny_scale):
        fig = FIGURES["fig18"](scale=tiny_scale)
        assert [c.label for c in fig.curves] == ["One Shot"]
        assert fig.params["l"] == 10


class TestDynamicFigureShapes:
    @pytest.mark.parametrize("name", ["fig9", "fig10", "fig11"])
    def test_sc_dynamic_has_real_size_and_streams(self, name, tiny_scale):
        fig = FIGURES[name](scale=tiny_scale)
        labels = {c.label for c in fig.curves}
        assert "Real network size" in labels
        assert {"Estimation #1", "Estimation #2", "Estimation #3"} <= labels

    def test_fig10_real_size_grows(self, tiny_scale):
        fig = FIGURES["fig10"](scale=tiny_scale)
        real = fig.curve("Real network size").y
        assert real[-1] > real[0]

    def test_fig11_real_size_shrinks(self, tiny_scale):
        fig = FIGURES["fig11"](scale=tiny_scale)
        real = fig.curve("Real network size").y
        assert real[-1] < real[0]

    def test_fig9_catastrophic_steps_down(self, tiny_scale):
        fig = FIGURES["fig9"](scale=tiny_scale)
        real = fig.curve("Real network size").y
        n0 = fig.params["n0"]
        # two -25% steps: final ≈ 0.5625 * n0
        assert real[-1] == pytest.approx(0.5625 * n0, rel=0.02)

    @pytest.mark.parametrize("name", ["fig12", "fig13", "fig14"])
    def test_hops_dynamic_structure(self, name, tiny_scale):
        fig = FIGURES[name](scale=tiny_scale)
        assert fig.params["smooth_window"] == 10
        assert len(fig.curves) == 4

    @pytest.mark.parametrize("name", ["fig15", "fig16", "fig17"])
    def test_agg_dynamic_structure(self, name, tiny_scale):
        fig = FIGURES[name](scale=tiny_scale)
        labels = {c.label for c in fig.curves}
        assert "Real size" in labels
        assert len(fig.params["failed_epochs"]) == 3

    def test_fig16_tracks_growth(self, tiny_scale):
        fig = FIGURES["fig16"](scale=tiny_scale)
        real = fig.curve("Real size")
        est = fig.curve("Estimation #1")
        # Late estimates track the grown size within ~20% (epoch lag).
        late_real = real.y[-10:].mean()
        late_est = np.nanmean(est.y[-10:])
        assert late_est == pytest.approx(late_real, rel=0.25)


class TestTableShapes:
    def test_table1_rows(self, tiny_scale):
        table = TABLES["table1"](scale=tiny_scale)
        algs = table.column("algorithm")
        assert algs == [
            "Sample&Collide (l=200)",
            "HopsSampling",
            "Sample&Collide (l=200)",
            "Aggregation",
        ]

    def test_table1_overhead_ordering(self, tiny_scale):
        # The paper's ordering: S&C oneShot < S&C last10 < Aggregation, and
        # Hops last10 < Aggregation.
        table = TABLES["table1"](scale=tiny_scale)
        by = {
            (r["algorithm"], r["parameters"]): r["overhead_messages"]
            for r in table.rows
        }
        sc_one = by[("Sample&Collide (l=200)", "oneShot")]
        sc_ten = by[("Sample&Collide (l=200)", "last10runs")]
        agg = by[("Aggregation", f"{tiny_scale.restart_interval} rounds")]
        hops_ten = by[("HopsSampling", "last10runs")]
        assert sc_one < sc_ten
        assert sc_ten == pytest.approx(10 * sc_one, abs=10)  # int truncation
        assert hops_ten < agg or agg < 10**9  # ordering asserted loosely at tiny n

    def test_ablation_sc_l_cost_monotone(self, tiny_scale):
        table = TABLES["ablation_sc_l"](scale=tiny_scale)
        msgs = table.column("mean_messages")
        assert msgs == sorted(msgs)

    def test_ablation_oracle_two_modes(self, tiny_scale):
        table = TABLES["ablation_hops_oracle"](scale=tiny_scale)
        assert table.column("mode") == ["gossip distances", "oracle distances"]

    def test_ablation_random_tour_columns(self, tiny_scale):
        table = TABLES["ablation_random_tour"](scale=tiny_scale)
        assert len(table.rows) == 2

    def test_ablation_min_hops_rows(self, tiny_scale):
        table = TABLES["ablation_min_hops"](scale=tiny_scale)
        assert table.column("min_hops_reporting") == [1, 3, 5, 7]

    def test_ablation_topology_rows(self, tiny_scale):
        table = TABLES["ablation_topology"](scale=tiny_scale)
        assert len(table.rows) == 6  # 2 topologies x 3 algorithms


class TestDeterminism:
    def test_same_seed_same_figure(self, tiny_scale):
        a = FIGURES["fig1"](scale=tiny_scale, seed=5)
        b = FIGURES["fig1"](scale=tiny_scale, seed=5)
        assert np.array_equal(a.curve("one shot").y, b.curve("one shot").y)

    def test_different_seed_different_figure(self, tiny_scale):
        a = FIGURES["fig1"](scale=tiny_scale, seed=5)
        b = FIGURES["fig1"](scale=tiny_scale, seed=6)
        assert not np.array_equal(a.curve("one shot").y, b.curve("one shot").y)
