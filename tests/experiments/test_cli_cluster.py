"""CLI surface of the cluster backend: --hosts, $REPRO_HOSTS, worker serve."""

from __future__ import annotations

import threading

import pytest

from repro.analysis.obs_report import read_journal, validate_journal
from repro.experiments.cli import _runtime_options, build_parser, main
from repro.runtime import WorkerServer


class TestHostsFlag:
    def test_default_is_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_HOSTS", raising=False)
        args = build_parser().parse_args(["run", "fig1"])
        assert args.hosts is None
        assert _runtime_options(args).hosts == ()

    def test_hosts_flag_parses_to_runtime(self):
        args = build_parser().parse_args(
            ["run", "fig1", "--hosts", "a:7700,b:7701"]
        )
        assert _runtime_options(args).hosts == ("a:7700", "b:7701")

    def test_hosts_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_HOSTS", "envhost:7700")
        args = build_parser().parse_args(["run", "fig1"])
        assert args.hosts == "envhost:7700"
        assert _runtime_options(args).hosts == ("envhost:7700",)

    def test_malformed_hosts_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["run", "fig1", "--hosts", "nodeport"])
        assert exc.value.code == 2
        assert "host" in capsys.readouterr().err


class TestWorkerServe:
    def test_malformed_bind_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["worker", "serve", "--bind", "nodeport"])
        assert exc.value.code == 2
        assert "host" in capsys.readouterr().err

    def test_serve_prints_address_and_honors_max_sessions(self, capsys):
        # max_sessions=0 exits immediately after binding — the smallest
        # end-to-end check of the serve loop that needs no driver.
        assert main(["worker", "serve", "--bind", "127.0.0.1:0",
                     "--max-sessions", "0"]) == 0
        out = capsys.readouterr().out
        assert "worker listening on 127.0.0.1:" in out

    def test_worker_is_not_rewritten_as_legacy_target(self, capsys):
        # "worker" leads the argv, so the bare-target rewrite must not
        # prepend "run" even though later tokens never match a target.
        with pytest.raises(SystemExit):
            main(["worker"])  # missing subcommand -> argparse error, not run
        assert "usage" in capsys.readouterr().err


class TestEndToEnd:
    def test_run_through_two_localhost_workers(self, tmp_path, monkeypatch):
        """fig18 at small scale through two loopback workers: exit 0, a
        validating journal with cluster events, and a cached artifact."""
        monkeypatch.setenv("REPRO_SCALE", "small")
        # No session cap: a figure may run several batches, each opening a
        # fresh driver session per host.
        servers = [WorkerServer() for _ in range(2)]
        threads = [
            threading.Thread(target=s.serve_forever, daemon=True)
            for s in servers
        ]
        for thread in threads:
            thread.start()
        journal = tmp_path / "run.jsonl"
        try:
            code = main(
                [
                    "run",
                    "fig18",
                    "--quiet",
                    "--hosts",
                    ",".join(s.address for s in servers),
                    "--cache-dir",
                    str(tmp_path / "cache"),
                    "--journal",
                    str(journal),
                ]
            )
        finally:
            for server in servers:
                server.close()
            for thread in threads:
                thread.join(timeout=5.0)
        assert code == 0
        events = read_journal(journal)
        assert validate_journal(events) == []
        assert any(e["event"] == "worker_connect" for e in events)
        assert any(e["event"] == "batch_finish" for e in events)
        assert list((tmp_path / "cache").glob("*/*.json"))
