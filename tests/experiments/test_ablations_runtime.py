"""Serial-vs-parallel determinism of the runtime-ported ablation studies.

Every ablation grid point runs as a cached trial batch (``fresh_probe``
for the repetition grids; ``delay_probe``/``idspace_probe``/
``repair_replay`` for the spec-layer ports); these tests pin the core
contract: ``runtime=None``, ``workers=1`` and ``workers=4`` produce
bit-identical tables, and a rerun against a warm store is served purely
from cache.
"""

from __future__ import annotations

import pytest

from repro.experiments.ablations import (
    hops_min_reporting_sweep,
    hops_oracle_bias,
    random_tour_gap,
    sc_cost_vs_l,
    topology_comparison,
)
from repro.experiments.config import Scale
from repro.experiments.delay import delay_comparison
from repro.experiments.idspace_exp import idspace_comparison
from repro.experiments.repair_exp import repair_comparison
from repro.experiments.timer_exp import sc_timer_sweep
from repro.runtime import RuntimeOptions

#: Tiny preset: large enough for every estimator to run, small enough for
#: the whole matrix to stay in CI seconds.
TINY = Scale(
    name="tiny",
    n_100k=400,
    n_1m=800,
    static_estimations=5,
    static_estimations_1m=5,
    aggregation_rounds=10,
    aggregation_horizon=50,
    dynamic_estimations=5,
    restart_interval=10,
)

ABLATIONS = [
    pytest.param(sc_cost_vs_l, {"ls": (10, 50), "repetitions": 3}, id="sc_l"),
    pytest.param(hops_oracle_bias, {"repetitions": 3}, id="hops_oracle"),
    pytest.param(random_tour_gap, {"repetitions": 3}, id="random_tour"),
    pytest.param(
        hops_min_reporting_sweep, {"values": (1, 5), "repetitions": 3}, id="min_hops"
    ),
    pytest.param(topology_comparison, {"repetitions": 3}, id="topology"),
    pytest.param(
        sc_timer_sweep, {"timers": (1.0, 5.0), "repetitions": 3}, id="sc_timer"
    ),
    # The last serial holdouts, ported via the declarative spec layer
    # (LatencySpec / IdSpaceSpec / RepairPolicySpec):
    pytest.param(delay_comparison, {}, id="delay"),
    pytest.param(idspace_comparison, {"repetitions": 3}, id="idspace"),
    pytest.param(repair_comparison, {}, id="repair"),
]


@pytest.mark.parametrize("fn,kwargs", ABLATIONS)
class TestDeterminism:
    def test_parallel_matches_serial(self, fn, kwargs, tmp_path):
        serial = fn(scale=TINY, seed=99, **kwargs)
        parallel = fn(
            scale=TINY,
            seed=99,
            runtime=RuntimeOptions.create(workers=4, cache_dir=tmp_path / "c"),
            **kwargs,
        )
        # CSV is the bit-exact serialization (NaN cells compare as text)
        assert parallel.to_csv() == serial.to_csv()
        assert parallel.columns == serial.columns
        assert parallel.title == serial.title

    def test_warm_rerun_is_pure_cache_hit(self, fn, kwargs, tmp_path):
        cache = tmp_path / "c"
        runtime = RuntimeOptions.create(workers=1, cache_dir=cache)
        first = fn(scale=TINY, seed=99, runtime=runtime, **kwargs)
        artifacts = sorted(cache.glob("*/*.json"))
        assert artifacts, "grid points must be cached"
        mtimes = [p.stat().st_mtime_ns for p in artifacts]
        again = fn(scale=TINY, seed=99, runtime=runtime, **kwargs)
        assert again.to_csv() == first.to_csv()
        # served from the store: no artifact rewritten
        assert [p.stat().st_mtime_ns for p in sorted(cache.glob("*/*.json"))] == mtimes


def test_one_artifact_per_grid_point(tmp_path):
    cache = tmp_path / "c"
    runtime = RuntimeOptions.create(workers=1, cache_dir=cache)
    sc_cost_vs_l(scale=TINY, seed=5, ls=(10, 50, 100), repetitions=2, runtime=runtime)
    assert len(list(cache.glob("*/*.json"))) == 3


def test_extending_grid_reuses_existing_points(tmp_path):
    cache = tmp_path / "c"
    runtime = RuntimeOptions.create(workers=1, cache_dir=cache)
    sc_cost_vs_l(scale=TINY, seed=5, ls=(10, 50), repetitions=2, runtime=runtime)
    old = {p: p.stat().st_mtime_ns for p in cache.glob("*/*.json")}
    sc_cost_vs_l(scale=TINY, seed=5, ls=(10, 50, 100), repetitions=2, runtime=runtime)
    assert len(list(cache.glob("*/*.json"))) == 3
    for path, mtime in old.items():
        assert path.stat().st_mtime_ns == mtime  # warm points untouched


def test_seed_perturbs_every_grid_point(tmp_path):
    cache = tmp_path / "c"
    runtime = RuntimeOptions.create(workers=1, cache_dir=cache)
    sc_cost_vs_l(scale=TINY, seed=5, ls=(10,), repetitions=2, runtime=runtime)
    sc_cost_vs_l(scale=TINY, seed=6, ls=(10,), repetitions=2, runtime=runtime)
    # different seeds address different artifacts (cache-key semantics)
    assert len(list(cache.glob("*/*.json"))) == 2


def test_tags_recorded_per_study(tmp_path):
    from repro.runtime import ResultsStore

    cache = tmp_path / "c"
    runtime = RuntimeOptions.create(workers=1, cache_dir=cache)
    sc_cost_vs_l(scale=TINY, seed=5, ls=(10,), repetitions=2, runtime=runtime)
    hops_oracle_bias(scale=TINY, seed=5, repetitions=2, runtime=runtime)
    tags = {info.tag for info in ResultsStore(cache).artifacts()}
    assert tags == {"ablation_sc_l", "ablation_hops_oracle"}
