"""CLI surface of the trends family: parsing, rendering, exit codes."""

from __future__ import annotations

import json

import pytest

from repro.experiments.cli import main
from repro.runtime import ResultsStore, TrialResult

CONFIG = {"kind": "static_probe", "hub_seed": 1, "n": 100, "trials": [[1, 0], [2, 0]]}


def _save(root, values, revision, tag="exp", saved_at=1.0, seed=1):
    ResultsStore(root).save(
        dict(CONFIG, hub_seed=seed),
        [TrialResult(index=i, value=float(v), true_size=100.0) for i, v in enumerate(values, 1)],
        meta={
            "trials": len(values),
            "tag": tag,
            "git_revision": revision,
            "saved_at": saved_at,
        },
    )


@pytest.fixture()
def two_revisions(tmp_path):
    _save(tmp_path / "revA", [98, 101, 100, 99, 102], revision="aaaa1111", saved_at=1.0)
    _save(tmp_path / "revB", [138, 141, 140, 139, 142], revision="bbbb2222", saved_at=2.0)
    return tmp_path


class TestParsing:
    @pytest.mark.parametrize(
        "argv",
        [
            ["trends", "--help"],
            ["trends", "report", "--help"],
            ["trends", "compare", "--help"],
            ["trends", "baseline", "--help"],
            ["trends", "check", "--help"],
        ],
    )
    def test_help_smoke(self, argv):
        with pytest.raises(SystemExit) as err:
            main(argv)
        assert err.value.code == 0

    def test_requires_cache_dir(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        with pytest.raises(SystemExit) as err:
            main(["trends", "report"])
        assert err.value.code == 2
        assert "--cache-dir" in capsys.readouterr().err

    def test_env_cache_dir(self, monkeypatch, tmp_path, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["trends", "report"]) == 0
        assert "no artifacts" in capsys.readouterr().out


class TestReport:
    def test_drift_table(self, two_revisions, capsys):
        assert main(["trends", "report", "--cache-dir", str(two_revisions)]) == 0
        out = capsys.readouterr().out
        assert "aaaa1111" in out and "bbbb2222" in out
        assert "DRIFT" in out
        assert "1 drifted" in out

    def test_json_output(self, two_revisions, capsys):
        assert main(
            ["trends", "report", "--cache-dir", str(two_revisions), "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["drifted"] is True
        (group,) = doc["groups"]
        assert group["revisions"] == ["aaaa1111", "bbbb2222"]

    def test_markdown_output(self, two_revisions, capsys):
        assert main(
            ["trends", "report", "--cache-dir", str(two_revisions), "--markdown"]
        ) == 0
        out = capsys.readouterr().out
        assert "| METRIC |" in out

    def test_metric_filter(self, two_revisions, capsys):
        assert main(
            [
                "trends",
                "report",
                "--cache-dir",
                str(two_revisions),
                "--metric",
                "messages",
            ]
        ) == 0
        # no messages metric in these artifacts -> no groups survive
        out = capsys.readouterr().out
        assert "quality" not in out


class TestCompare:
    def test_compare_prefixes(self, two_revisions, capsys):
        assert main(
            ["trends", "compare", "aaaa", "bbbb", "--cache-dir", str(two_revisions)]
        ) == 0
        out = capsys.readouterr().out
        assert "DRIFT" in out

    def test_unknown_revision_exit_2(self, two_revisions, capsys):
        assert main(
            ["trends", "compare", "aaaa", "zzzz", "--cache-dir", str(two_revisions)]
        ) == 2
        assert "no artifacts at revision" in capsys.readouterr().err


class TestBaselineAndCheck:
    def test_baseline_to_stdout(self, two_revisions, capsys):
        assert main(
            [
                "trends",
                "baseline",
                "--cache-dir",
                str(two_revisions / "revA"),
            ]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["baseline_schema"] == 1
        assert len(doc["groups"]) == 1

    def test_check_ok_exit_0(self, two_revisions, tmp_path_factory, capsys):
        out_file = tmp_path_factory.mktemp("base") / "base.json"
        main(
            [
                "trends",
                "baseline",
                "--cache-dir",
                str(two_revisions / "revA"),
                "--out",
                str(out_file),
            ]
        )
        assert main(
            [
                "trends",
                "check",
                "--baseline",
                str(out_file),
                "--cache-dir",
                str(two_revisions / "revA"),
                "--fail-on-drift",
            ]
        ) == 0

    def test_check_drift_exit_codes(self, two_revisions, tmp_path_factory, capsys):
        out_file = tmp_path_factory.mktemp("base") / "base.json"
        main(
            [
                "trends",
                "baseline",
                "--cache-dir",
                str(two_revisions / "revA"),
                "--out",
                str(out_file),
            ]
        )
        capsys.readouterr()
        # whole parent: newest revision (bbbb) drifted -> reported...
        argv = [
            "trends",
            "check",
            "--baseline",
            str(out_file),
            "--cache-dir",
            str(two_revisions),
        ]
        assert main(argv) == 0  # ...but exit 0 without the gate flag
        assert "drift" in capsys.readouterr().out
        # with the gate flag the same drift is a failing exit
        assert main(argv + ["--fail-on-drift"]) == 1

    def test_check_bad_baseline_exit_2(self, two_revisions, tmp_path_factory, capsys):
        bad = tmp_path_factory.mktemp("base") / "bad.json"
        bad.write_text("{}")
        assert main(
            [
                "trends",
                "check",
                "--baseline",
                str(bad),
                "--cache-dir",
                str(two_revisions),
            ]
        ) == 2

    def test_check_json(self, two_revisions, tmp_path_factory, capsys):
        out_file = tmp_path_factory.mktemp("base") / "base.json"
        main(
            [
                "trends",
                "baseline",
                "--cache-dir",
                str(two_revisions / "revA"),
                "--out",
                str(out_file),
            ]
        )
        capsys.readouterr()
        assert main(
            [
                "trends",
                "check",
                "--baseline",
                str(out_file),
                "--cache-dir",
                str(two_revisions),
                "--json",
            ]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is False
        assert doc["outcomes"][0]["status"] == "drift"
