"""Tests for the timer-budget ablation."""

from __future__ import annotations

import pytest

from repro.experiments.timer_exp import sc_timer_sweep


class TestTimerSweep:
    def test_structure(self, tiny_scale):
        table = sc_timer_sweep(scale=tiny_scale, timers=(1.0, 10.0), repetitions=4)
        assert len(table.rows) == 4  # 2 topologies x 2 timers
        topologies = set(table.column("topology"))
        assert len(topologies) == 2

    def test_cost_grows_with_timer(self, tiny_scale):
        table = sc_timer_sweep(scale=tiny_scale, timers=(1.0, 10.0), repetitions=4)
        for topo in set(table.column("topology")):
            rows = {r["timer"]: r for r in table.rows if r["topology"] == topo}
            assert rows[10.0]["mean_messages"] > rows[1.0]["mean_messages"]

    def test_expander_debiased_at_t10(self, tiny_scale):
        table = sc_timer_sweep(scale=tiny_scale, timers=(1.0, 10.0), repetitions=6)
        rows = {
            (r["topology"].split(" ")[0], r["timer"]): r["mean_quality_pct"]
            for r in table.rows
        }
        assert rows[("heterogeneous", 1.0)] < rows[("heterogeneous", 10.0)]
        assert rows[("heterogeneous", 10.0)] == pytest.approx(100, abs=30)

    def test_ring_stays_biased(self, tiny_scale):
        table = sc_timer_sweep(scale=tiny_scale, timers=(10.0,), repetitions=4)
        ring = next(
            r for r in table.rows if r["topology"].startswith("ring")
        )
        assert ring["mean_quality_pct"] < 60

    def test_deterministic(self, tiny_scale):
        a = sc_timer_sweep(scale=tiny_scale, seed=5, timers=(2.0,), repetitions=3)
        b = sc_timer_sweep(scale=tiny_scale, seed=5, timers=(2.0,), repetitions=3)
        assert a.rows == b.rows
