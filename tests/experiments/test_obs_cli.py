"""CLI observability surface: `run --journal` and the `obs` family.

Also covers table1/fig7, which route through the runtime since the
observability PR: their rows must be identical at any worker count and
their batches must land in the results store like every figure's.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.cli import _runtime_options, build_parser, main
from repro.experiments.overhead import table1_overhead
from repro.experiments.scale_free_exp import fig07_scale_free_degrees
from repro.runtime import JournalReporter, LogProgress, RuntimeOptions, TeeProgress


class TestParsing:
    def test_journal_flag(self, tmp_path):
        args = build_parser().parse_args(
            ["run", "fig7", "--journal", str(tmp_path / "run.jsonl")]
        )
        assert args.journal == tmp_path / "run.jsonl"
        assert build_parser().parse_args(["run", "fig7"]).journal is None

    def test_obs_subcommands_parse(self, tmp_path):
        journal = str(tmp_path / "run.jsonl")
        for sub in ("summary", "validate"):
            args = build_parser().parse_args(["obs", sub, journal])
            assert args.obs_command == sub
        args = build_parser().parse_args(
            ["obs", "trace", journal, "-o", str(tmp_path / "trace.json")]
        )
        assert args.obs_command == "trace"
        assert args.out == tmp_path / "trace.json"

    def test_obs_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs"])

    def test_runtime_options_compose_reporters(self, tmp_path):
        journal = JournalReporter(tmp_path / "run.jsonl")
        try:
            args = build_parser().parse_args(["run", "fig7", "--progress"])
            runtime = _runtime_options(args, journal=journal)
            assert isinstance(runtime.progress, TeeProgress)
            kinds = {type(r) for r in runtime.progress.reporters}
            assert kinds == {LogProgress, JournalReporter}
            quiet = build_parser().parse_args(["run", "fig7"])
            assert _runtime_options(quiet, journal=journal).progress is journal
            assert _runtime_options(quiet).progress is None
        finally:
            journal.close()


class TestObsFlow:
    def _journal(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        journal = tmp_path / "run.jsonl"
        assert (
            main(
                [
                    "run",
                    "fig7",
                    "--workers",
                    "2",
                    "--journal",
                    str(journal),
                    "--quiet",
                ]
            )
            == 0
        )
        return journal

    def test_run_writes_valid_journal(self, tmp_path, monkeypatch, capsys):
        journal = self._journal(tmp_path, monkeypatch)
        assert journal.exists()
        assert main(["obs", "validate", str(journal)]) == 0
        assert "valid journal" in capsys.readouterr().out

    def test_summary_renders(self, tmp_path, monkeypatch, capsys):
        journal = self._journal(tmp_path, monkeypatch)
        assert main(["obs", "summary", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "run journal summary" in out
        assert "estimation" in out

    def test_trace_export(self, tmp_path, monkeypatch, capsys):
        journal = self._journal(tmp_path, monkeypatch)
        trace_path = tmp_path / "trace.json"
        assert main(["obs", "trace", str(journal), "-o", str(trace_path)]) == 0
        trace = json.loads(trace_path.read_text())
        assert trace["displayTimeUnit"] == "ms"
        assert any(e["ph"] == "X" for e in trace["traceEvents"])

    def test_trace_to_stdout(self, tmp_path, monkeypatch, capsys):
        journal = self._journal(tmp_path, monkeypatch)
        assert main(["obs", "trace", str(journal)]) == 0
        trace = json.loads(capsys.readouterr().out)
        assert "traceEvents" in trace

    def test_missing_journal_fails_cleanly(self, tmp_path, capsys):
        assert main(["obs", "summary", str(tmp_path / "nope.jsonl")]) == 2
        assert "obs summary" in capsys.readouterr().err

    def test_invalid_journal_fails_validation(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"ts": 1.0, "event": "warp-core-breach"}\n')
        assert main(["obs", "validate", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "problem(s)" in out


class TestRoutedExperiments:
    """table1/fig7 ride the runtime now: parallel-identical and cacheable."""

    def test_table1_rows_identical_at_any_worker_count(self):
        serial = table1_overhead(scale="small")
        parallel = table1_overhead(
            scale="small", runtime=RuntimeOptions.create(workers=2)
        )
        assert serial.rows == parallel.rows
        assert serial.title == parallel.title

    def test_fig7_identical_at_any_worker_count(self):
        serial = fig07_scale_free_degrees(scale="small")
        parallel = fig07_scale_free_degrees(
            scale="small", runtime=RuntimeOptions.create(workers=2)
        )
        assert serial.params == parallel.params
        assert [(c.label, c.x.tolist(), c.y.tolist()) for c in serial.curves] == [
            (c.label, c.x.tolist(), c.y.tolist()) for c in parallel.curves
        ]

    def test_table1_batches_land_in_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        cache = tmp_path / "cache"
        argv = ["run", "table1", "--cache-dir", str(cache), "--quiet"]
        assert main(argv) == 0
        artifacts = list(cache.glob("*/*.json"))
        # sc probes, hops probes, aggregation epoch, overlay stats.
        assert len(artifacts) == 4
        mtimes = sorted(a.stat().st_mtime_ns for a in artifacts)
        assert main(argv) == 0  # warm run: all four served from the store
        assert sorted(a.stat().st_mtime_ns for a in artifacts) == mtimes

    def test_fig7_batch_lands_in_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        cache = tmp_path / "cache"
        assert main(["run", "fig7", "--cache-dir", str(cache), "--quiet"]) == 0
        artifacts = list(cache.glob("*/*.json"))
        assert len(artifacts) == 1
        meta = json.loads(artifacts[0].read_text())["meta"]
        assert meta["tag"] == "fig7"
