"""Tests for the CLI's runtime flags (--workers / --cache-dir / --force)."""

from __future__ import annotations

import pytest

from repro.experiments.cli import _runtime_options, build_parser, main


class TestFlagParsing:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        args = build_parser().parse_args(["run", "fig1"])
        assert args.workers == 1
        assert args.cache_dir is None
        assert args.force is False

    def test_workers_flag(self):
        args = build_parser().parse_args(["run", "fig1", "--workers", "4"])
        assert args.workers == 4

    def test_no_snapshot_flag(self):
        args = build_parser().parse_args(["run", "fig9", "--no-snapshot"])
        assert args.no_snapshot is True
        assert _runtime_options(args).snapshots is False
        default = build_parser().parse_args(["run", "fig9"])
        assert default.no_snapshot is False
        assert _runtime_options(default).snapshots is True

    def test_workers_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        args = build_parser().parse_args(["run", "fig1"])
        assert args.workers == 3

    def test_cache_dir_env_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        args = build_parser().parse_args(["run", "fig1"])
        assert args.cache_dir == tmp_path

    def test_run_honors_cache_dir_env(self, tmp_path, monkeypatch):
        """$REPRO_CACHE_DIR alone must make `run` cache its artifacts."""
        monkeypatch.setenv("REPRO_SCALE", "small")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        assert main(["run", "fig18", "--quiet"]) == 0
        assert len(list((tmp_path / "envcache").glob("*/*.json"))) == 1

    def test_cache_dir_and_force(self, tmp_path):
        args = build_parser().parse_args(
            ["run", "fig1", "--cache-dir", str(tmp_path), "--force"]
        )
        assert args.cache_dir == tmp_path
        assert args.force is True

    def test_runtime_options_mapping(self, tmp_path):
        args = build_parser().parse_args(
            ["run", "fig1", "--workers", "2", "--cache-dir", str(tmp_path)]
        )
        runtime = _runtime_options(args, tag="fig1")
        assert runtime.workers == 2
        assert runtime.store is not None
        assert runtime.store.root == tmp_path
        assert runtime.tag == "fig1"

    def test_no_cache_dir_no_store(self):
        runtime = _runtime_options(build_parser().parse_args(["run", "fig1"]))
        assert runtime.store is None

    def test_rejects_bad_workers(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig1", "--workers", "two"])

    def test_rejects_file_as_cache_dir(self, tmp_path):
        not_a_dir = tmp_path / "artifact.json"
        not_a_dir.write_text("{}")
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "fig1", "--cache-dir", str(not_a_dir)]
            )


class TestMainWithRuntime:
    def test_figure_with_workers_and_cache(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SCALE", "small")
        cache = tmp_path / "cache"
        argv = [
            "run",
            "fig18",
            "--workers",
            "2",
            "--cache-dir",
            str(cache),
            "--quiet",
        ]
        assert main(argv) == 0
        artifacts = list(cache.glob("*/*.json"))
        assert len(artifacts) == 1
        # second invocation is served from the store (artifact untouched)
        mtime = artifacts[0].stat().st_mtime_ns
        assert main(argv) == 0
        assert artifacts[0].stat().st_mtime_ns == mtime

    def test_force_rewrites_artifact(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        cache = tmp_path / "cache"
        argv = ["run", "fig18", "--cache-dir", str(cache), "--quiet"]
        assert main(argv) == 0
        artifact = next(cache.glob("*/*.json"))
        mtime = artifact.stat().st_mtime_ns
        assert main(argv + ["--force"]) == 0
        assert next(cache.glob("*/*.json")).stat().st_mtime_ns > mtime

    def test_artifact_carries_target_tag(self, tmp_path, monkeypatch):
        import json

        monkeypatch.setenv("REPRO_SCALE", "small")
        cache = tmp_path / "cache"
        assert main(["run", "fig18", "--cache-dir", str(cache), "--quiet"]) == 0
        artifact = json.loads(next(cache.glob("*/*.json")).read_text())
        assert artifact["meta"]["tag"] == "fig18"

    def test_ablation_honors_runtime_flags(self, tmp_path, monkeypatch, capsys):
        """The ablation tables run through the runtime since their port."""
        monkeypatch.setenv("REPRO_SCALE", "small")
        cache = tmp_path / "cache"
        argv = [
            "run",
            "ablation_hops_oracle",
            "--workers",
            "2",
            "--cache-dir",
            str(cache),
            "--quiet",
        ]
        assert main(argv) == 0
        artifacts = list(cache.glob("*/*.json"))
        assert len(artifacts) == 2  # one batch per distance mode
