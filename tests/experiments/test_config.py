"""Tests for experiment scale presets and configuration."""

from __future__ import annotations

import pytest

from repro.experiments.config import SCALES, ExperimentConfig, resolve_scale


class TestResolveScale:
    def test_by_name(self):
        assert resolve_scale("small").name == "small"
        assert resolve_scale("paper").n_1m == 1_000_000

    def test_passthrough(self, tiny_scale):
        assert resolve_scale(tiny_scale) is tiny_scale

    def test_default_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert resolve_scale(None).name == "small"

    def test_default_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert resolve_scale(None).name == "default"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown scale"):
            resolve_scale("huge")

    def test_case_insensitive(self):
        assert resolve_scale("SMALL").name == "small"


class TestScales:
    def test_all_presets_monotone(self):
        assert SCALES["small"].n_100k < SCALES["default"].n_100k < SCALES["paper"].n_100k
        assert SCALES["paper"].n_100k == 100_000
        assert SCALES["paper"].n_1m == 1_000_000

    def test_paper_preset_matches_paper_parameters(self):
        p = SCALES["paper"]
        assert p.static_estimations == 100
        assert p.aggregation_horizon == 10_000
        assert p.restart_interval == 50

    def test_scaled_events(self):
        small = SCALES["small"]
        t1, t2, t3 = small.scaled_events(100.0, 500.0, 700.0)
        f = small.aggregation_horizon / 10_000.0
        assert (t1, t2, t3) == (
            max(1, round(100 * f)),
            max(1, round(500 * f)),
            max(1, round(700 * f)),
        )

    def test_scaled_events_identity_at_paper_scale(self):
        assert SCALES["paper"].scaled_events(100.0, 700.0) == (100.0, 700.0)


class TestExperimentConfig:
    def test_defaults_match_paper(self):
        cfg = ExperimentConfig()
        assert cfg.sc_l == 200
        assert cfg.sc_timer == 10.0
        assert cfg.hops_fanout == 2
        assert cfg.hops_min_reporting == 5
        assert cfg.last_runs_window == 10
        assert cfg.max_degree == 10

    def test_with_scale(self):
        cfg = ExperimentConfig().with_scale("small")
        assert cfg.scale.name == "small"
        assert cfg.sc_l == 200  # everything else preserved
