"""Tests for the structured-vs-unstructured ablation."""

from __future__ import annotations


from repro.experiments.idspace_exp import idspace_comparison


class TestIdspaceComparison:
    def test_rows_and_columns(self, tiny_scale):
        table = idspace_comparison(scale=tiny_scale)
        assert len(table.rows) == 3
        assumptions = table.column("assumption")
        assert "uniform ids (DHT)" in assumptions
        assert "skewed ids (broken)" in assumptions
        assert "none (any overlay)" in assumptions

    def test_uniform_ids_cheap_and_accurate(self, tiny_scale):
        table = idspace_comparison(scale=tiny_scale)
        by = {r["assumption"]: r for r in table.rows}
        uniform = by["uniform ids (DHT)"]
        sc = by["none (any overlay)"]
        assert uniform["mean_messages"] < sc["mean_messages"] / 20
        assert uniform["mean_abs_error_pct"] < 25  # order-statistic noise at tiny n

    def test_skew_breaks_density_estimation(self, tiny_scale):
        table = idspace_comparison(scale=tiny_scale)
        by = {r["assumption"]: r for r in table.rows}
        assert (
            by["skewed ids (broken)"]["mean_abs_error_pct"]
            > 2 * by["uniform ids (DHT)"]["mean_abs_error_pct"]
        )

    def test_deterministic(self, tiny_scale):
        a = idspace_comparison(scale=tiny_scale, seed=3)
        b = idspace_comparison(scale=tiny_scale, seed=3)
        assert a.rows == b.rows
