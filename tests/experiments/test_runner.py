"""Tests for the shared experiment runners."""

from __future__ import annotations


import numpy as np
import pytest

from repro.churn.models import shrinking_trace
from repro.core.sample_collide import SampleCollideEstimator
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    aggregation_convergence,
    aggregation_dynamic,
    build_overlay,
    build_scale_free_overlay,
    dynamic_probe_series,
    static_probe_series,
)
from repro.sim.rng import RngHub


def _cfg(tiny_scale):
    return ExperimentConfig(seed=77, scale=tiny_scale)


class TestBuilders:
    def test_build_overlay_size(self, tiny_scale):
        cfg = _cfg(tiny_scale)
        g = build_overlay(cfg, 300, RngHub(1))
        assert g.size == 300

    def test_build_overlay_deterministic(self, tiny_scale):
        cfg = _cfg(tiny_scale)
        a = build_overlay(cfg, 200, RngHub(3))
        b = build_overlay(cfg, 200, RngHub(3))
        assert sorted(a.edges()) == sorted(b.edges())

    def test_scale_free_overlay(self):
        g = build_scale_free_overlay(300, RngHub(2), m=3)
        assert g.size == 300


class TestStaticSeries:
    def test_counts_and_truth(self, tiny_scale):
        cfg = _cfg(tiny_scale)
        hub = RngHub(5)
        g = build_overlay(cfg, 400, hub)
        series = static_probe_series(
            lambda graph, h: SampleCollideEstimator(graph, l=20, rng=h.stream("sc")),
            g,
            10,
            hub,
        )
        assert len(series) == 10
        assert (series.true_sizes == 400).all()
        assert (series.estimates > 0).all()

    def test_runs_are_independent(self, tiny_scale):
        cfg = _cfg(tiny_scale)
        hub = RngHub(6)
        g = build_overlay(cfg, 400, hub)
        series = static_probe_series(
            lambda graph, h: SampleCollideEstimator(graph, l=20, rng=h.stream("sc")),
            g,
            8,
            hub,
        )
        assert len(set(series.estimates)) > 1


class TestDynamicSeries:
    def test_true_size_follows_trace(self, tiny_scale):
        cfg = _cfg(tiny_scale)
        hub = RngHub(7)
        g = build_overlay(cfg, 400, hub)
        trace = shrinking_trace(400, 0.5, start=1, end=10, steps=10)
        series = dynamic_probe_series(
            lambda graph, h: SampleCollideEstimator(graph, l=20, rng=h.stream("sc")),
            g,
            trace,
            10,
            hub,
        )
        assert series.true_sizes[-1] == 200
        assert len(series) == 10

    def test_estimates_track_truth_loosely(self, tiny_scale):
        cfg = _cfg(tiny_scale)
        hub = RngHub(8)
        g = build_overlay(cfg, 400, hub)
        trace = shrinking_trace(400, 0.5, start=1, end=20, steps=20)
        series = dynamic_probe_series(
            lambda graph, h: SampleCollideEstimator(graph, l=50, rng=h.stream("sc")),
            g,
            trace,
            20,
            hub,
        )
        ratio = np.nanmean(series.estimates / series.true_sizes)
        assert ratio == pytest.approx(1.0, abs=0.35)


class TestAggregationRunners:
    def test_convergence_curves(self, tiny_scale):
        cfg = _cfg(tiny_scale)
        hub = RngHub(9)
        g = build_overlay(cfg, 300, hub)
        curves = aggregation_convergence(g, 30, hub, runs=2)
        assert len(curves) == 2
        for xs, qs in curves:
            assert xs.shape == qs.shape == (30,)
            assert qs[-1] == pytest.approx(100, abs=3)

    def test_dynamic_monitor_runs(self, tiny_scale):
        cfg = _cfg(tiny_scale)
        hub = RngHub(10)
        series_list, failures = aggregation_dynamic(
            cfg,
            300,
            lambda n0: shrinking_trace(n0, 0.3, start=1, end=60, steps=10),
            60,
            hub,
            runs=2,
            restart_interval=15,
        )
        assert len(series_list) == 2
        assert len(failures) == 2
        for series in series_list:
            assert len(series) == 60
            assert series.true_sizes[-1] == pytest.approx(210, abs=2)
