"""Tests for the repro-experiment command-line interface."""

from __future__ import annotations

import pytest

from repro.experiments import FIGURES, TABLES
from repro.experiments.cli import build_parser, main


class TestParser:
    def test_all_targets_accepted(self):
        parser = build_parser()
        for name in list(FIGURES) + list(TABLES) + ["all"]:
            args = parser.parse_args(["run", name])
            assert args.target == name

    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_scale_choices(self):
        args = build_parser().parse_args(["run", "fig1", "--scale", "small"])
        assert args.scale == "small"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig1", "--scale", "gigantic"])

    def test_seed_and_csv(self, tmp_path):
        args = build_parser().parse_args(
            ["run", "table1", "--seed", "9", "--csv-dir", str(tmp_path)]
        )
        assert args.seed == 9
        assert args.csv_dir == tmp_path

    def test_cache_subcommands_parse(self, tmp_path):
        for sub in ("ls", "stats"):
            args = build_parser().parse_args(
                ["cache", sub, "--cache-dir", str(tmp_path)]
            )
            assert args.cache_command == sub
        args = build_parser().parse_args(
            ["cache", "gc", "--cache-dir", str(tmp_path), "--max-age-days", "7",
             "--max-size", "1MB", "--dry-run"]
        )
        assert args.cache_command == "gc"
        assert args.max_age_days == 7
        assert args.max_size == 10**6
        assert args.dry_run is True


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "table1" in out

    def test_run_figure_renders_chart(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        # fig7 is the fastest figure (graph construction only).
        assert main(["run", "fig7"]) == 0
        out = capsys.readouterr().out
        assert "fig07" in out
        assert "legend" in out

    def test_legacy_bare_target_still_works(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert main(["fig7", "--quiet"]) == 0

    def test_legacy_flags_before_target_still_work(self, capsys, monkeypatch):
        """The pre-subcommand parser accepted optionals first."""
        assert main(["--scale", "small", "fig7", "--quiet"]) == 0

    def test_run_table_renders_rows(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert main(["run", "ablation_hops_oracle"]) == 0
        out = capsys.readouterr().out
        assert "oracle distances" in out

    def test_csv_output(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert main(["run", "fig7", "--csv-dir", str(tmp_path), "--quiet"]) == 0
        csv_file = tmp_path / "fig7.csv"
        assert csv_file.exists()
        assert csv_file.read_text().startswith("figure,curve,x,y")

    def test_quiet_suppresses_chart(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        main(["run", "fig7", "--quiet"])
        assert "legend" not in capsys.readouterr().out
