"""Tests for the repro-experiment command-line interface."""

from __future__ import annotations

import pytest

from repro.experiments import FIGURES, TABLES
from repro.experiments.cli import build_parser, main


class TestParser:
    def test_all_targets_accepted(self):
        parser = build_parser()
        for name in list(FIGURES) + list(TABLES) + ["all", "list"]:
            args = parser.parse_args([name])
            assert args.target == name

    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_scale_choices(self):
        args = build_parser().parse_args(["fig1", "--scale", "small"])
        assert args.scale == "small"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig1", "--scale", "gigantic"])

    def test_seed_and_csv(self, tmp_path):
        args = build_parser().parse_args(
            ["table1", "--seed", "9", "--csv-dir", str(tmp_path)]
        )
        assert args.seed == 9
        assert args.csv_dir == tmp_path


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "table1" in out

    def test_run_figure_renders_chart(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        # fig7 is the fastest figure (graph construction only).
        assert main(["fig7"]) == 0
        out = capsys.readouterr().out
        assert "fig07" in out
        assert "legend" in out

    def test_run_table_renders_rows(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert main(["ablation_hops_oracle"]) == 0
        out = capsys.readouterr().out
        assert "oracle distances" in out

    def test_csv_output(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert main(["fig7", "--csv-dir", str(tmp_path), "--quiet"]) == 0
        csv_file = tmp_path / "fig7.csv"
        assert csv_file.exists()
        assert csv_file.read_text().startswith("figure,curve,x,y")

    def test_quiet_suppresses_chart(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        main(["fig7", "--quiet"])
        assert "legend" not in capsys.readouterr().out
