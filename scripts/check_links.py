#!/usr/bin/env python3
"""Fail on broken intra-repo links in the project's markdown docs.

Scans ``README.md`` and ``docs/*.md`` for inline markdown links
(``[text](target)``) and verifies that every non-external target resolves
to an existing file or directory relative to the containing document
(``#anchor`` suffixes are stripped; pure-anchor and ``http(s)``/``mailto``
links are skipped — CI must not depend on network reachability).

Used by the CI docs job; importable from tests.
"""

from __future__ import annotations

import pathlib
import re
import sys
from typing import Iterable, List

#: Inline markdown links. Deliberately simple: no reference-style links
#: are used in this repo, and nested parens don't appear in targets.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

_EXTERNAL = ("http://", "https://", "mailto:")


def iter_links(text: str) -> Iterable[str]:
    """All inline link targets in a markdown document."""
    for match in _LINK_RE.finditer(text):
        yield match.group(1)


def check_file(path: pathlib.Path) -> List[str]:
    """Broken-link descriptions for one markdown file (empty = clean)."""
    problems: List[str] = []
    for target in iter_links(path.read_text(encoding="utf-8")):
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            problems.append(f"{path}: broken link -> {target}")
    return problems


def default_docs(root: pathlib.Path) -> List[pathlib.Path]:
    """The documents the CI job validates: the user-facing root docs plus
    everything under ``docs/`` (so a new doc is covered the moment it
    lands)."""
    docs = [root / "README.md", root / "ROADMAP.md", root / "CHANGES.md"]
    docs.extend(sorted((root / "docs").glob("*.md")))
    return [d for d in docs if d.exists()]


def main(argv: List[str]) -> int:
    root = pathlib.Path(argv[1]) if len(argv) > 1 else pathlib.Path.cwd()
    paths = default_docs(root)
    if not paths:
        print(f"no markdown docs found under {root}", file=sys.stderr)
        return 1
    problems = [p for path in paths for p in check_file(path)]
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked {len(paths)} file(s): {len(problems)} broken link(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
