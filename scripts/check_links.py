#!/usr/bin/env python3
"""Fail on broken intra-repo links in the project's markdown docs.

Scans ``README.md``, ``ROADMAP.md``, ``CHANGES.md`` and ``docs/*.md`` for
inline markdown links (``[text](target)``) and verifies that:

* every non-external file target resolves to an existing file or directory
  relative to the containing document;
* every ``#anchor`` — pure (``#section``) or suffixed onto a markdown
  target (``SNAPSHOTS.md#invariants``) — matches a heading slug in the
  addressed document (GitHub's slug rules: lowercase, punctuation
  stripped, spaces to hyphens);
* every ``docs/*.md`` file is linked from the ``docs/README.md`` index,
  so no guide can land unreachable from the reading-order table.

``http(s)``/``mailto`` links are skipped — CI must not depend on network
reachability.  Used by the CI docs job; importable from tests.
"""

from __future__ import annotations

import pathlib
import re
import sys
from typing import Iterable, List

#: Inline markdown links. Deliberately simple: no reference-style links
#: are used in this repo, and nested parens don't appear in targets.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

_HEADING_RE = re.compile(r"^#{1,6}\s+(.+?)\s*#*\s*$", re.MULTILINE)

_FENCE_RE = re.compile(r"^(```|~~~).*?^\1\s*$", re.MULTILINE | re.DOTALL)

_EXTERNAL = ("http://", "https://", "mailto:")


def iter_links(text: str) -> Iterable[str]:
    """All inline link targets in a markdown document."""
    for match in _LINK_RE.finditer(text):
        yield match.group(1)


def slugify(heading: str) -> str:
    """GitHub-style anchor slug of a heading.

    Inline markup is stripped (code ticks, ``*`` emphasis, link text),
    then everything but word characters (underscores included — GitHub
    keeps them), spaces and hyphens is dropped, lowercased, and spaces
    become hyphens.
    """
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)  # [text](url) -> text
    text = text.replace("`", "").replace("*", "")
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return re.sub(r" +", "-", text.strip().lower())


def heading_anchors(text: str) -> set:
    """The set of anchor slugs a markdown document exposes.

    Mirrors GitHub's duplicate handling: a repeated heading slug gets
    ``-1``, ``-2``, … suffixes in document order, and all variants are
    valid targets.  Fenced code blocks are stripped first — a shell
    comment like ``# paper fidelity`` inside a fence is not a heading and
    generates no anchor on GitHub.
    """
    text = _FENCE_RE.sub("", text)
    anchors: set = set()
    counts: dict = {}
    for match in _HEADING_RE.finditer(text):
        slug = slugify(match.group(1))
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        anchors.add(slug if seen == 0 else f"{slug}-{seen}")
    return anchors


def check_file(path: pathlib.Path) -> List[str]:
    """Broken-link descriptions for one markdown file (empty = clean)."""
    problems: List[str] = []
    text = path.read_text(encoding="utf-8")
    own_anchors = None  # computed lazily: most docs have no anchor links
    for target in iter_links(text):
        if target.startswith(_EXTERNAL):
            continue
        if target.startswith("#"):
            if own_anchors is None:
                own_anchors = heading_anchors(text)
            if target[1:].lower() not in own_anchors:
                problems.append(f"{path}: broken anchor -> {target}")
            continue
        file_part, _, anchor = target.partition("#")
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            problems.append(f"{path}: broken link -> {target}")
            continue
        if anchor and resolved.suffix.lower() in (".md", ".markdown"):
            try:
                anchors = heading_anchors(resolved.read_text(encoding="utf-8"))
            except OSError:
                anchors = set()
            if anchor.lower() not in anchors:
                problems.append(f"{path}: broken anchor -> {target}")
    return problems


def default_docs(root: pathlib.Path) -> List[pathlib.Path]:
    """The documents the CI job validates: the user-facing root docs plus
    everything under ``docs/`` (so a new doc — SNAPSHOTS.md being the
    latest — is covered the moment it lands)."""
    docs = [root / "README.md", root / "ROADMAP.md", root / "CHANGES.md"]
    docs.extend(sorted((root / "docs").glob("*.md")))
    return [d for d in docs if d.exists()]


def check_docs_index(root: pathlib.Path) -> List[str]:
    """Every ``docs/*.md`` must be linked from the ``docs/README.md`` index.

    Keeps the reading-order table complete: a guide nobody can reach from
    the index is effectively unpublished.  The index itself is exempt.
    """
    index = root / "docs" / "README.md"
    if not index.exists():
        return [f"{index}: missing docs index"]
    linked = {
        pathlib.PurePosixPath(target.partition("#")[0]).name
        for target in iter_links(index.read_text(encoding="utf-8"))
        if not target.startswith(_EXTERNAL) and not target.startswith("#")
    }
    return [
        f"{doc}: not listed in {index}"
        for doc in sorted((root / "docs").glob("*.md"))
        if doc.name != "README.md" and doc.name not in linked
    ]


def main(argv: List[str]) -> int:
    """CLI entry point: check every default doc under the given root."""
    root = pathlib.Path(argv[1]) if len(argv) > 1 else pathlib.Path.cwd()
    paths = default_docs(root)
    if not paths:
        print(f"no markdown docs found under {root}", file=sys.stderr)
        return 1
    problems = [p for path in paths for p in check_file(path)]
    problems.extend(check_docs_index(root))
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked {len(paths)} file(s): {len(problems)} broken link(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
