#!/usr/bin/env python3
"""Benchmark of the always-on estimation service (``repro.service``).

Produces ``BENCH_SERVICE.json`` (committed at the repo root), the
operational evidence behind ``docs/SERVICE.md``:

* **serve throughput** — admitted ``/estimate`` reads per second, both
  in-process (the service core without transport) and over the HTTP
  endpoint, while a background ticker keeps the scenario advancing under
  sustained synthetic churn;
* **staleness** — the round-distance between the served estimate and the
  current round, sampled once per round for each warm family (probe
  families refresh every ``probe_interval`` rounds, so their staleness
  saw-tooths between 0 and ``probe_interval - 1``; the aggregation
  staircase lags up to one restart epoch);
* **admission control** — with ``max_qps`` set, the measured admitted
  rate must settle onto the configured rate (the token-bucket gate);
* **checkpoint cost** — bytes and seconds of one snapshot write at the
  benchmark overlay size.

Usage::

    PYTHONPATH=src python scripts/bench_service.py
        [--nodes 2000] [--rounds 120] [--seconds 3.0]
        [--out BENCH_SERVICE.json]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys
import tempfile
import threading
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service import (  # noqa: E402
    EstimationService,
    ServiceClient,
    ServiceConfig,
    ServiceServer,
)

#: Synthetic churn per round: this many joins and leaves, size-neutral.
CHURN_PER_ROUND = 10


def build_service(nodes: int, max_qps: float = 0.0) -> EstimationService:
    """One benchmark service: both probe families plus aggregation."""
    return EstimationService(
        ServiceConfig(
            seed=11,
            initial_size=nodes,
            estimators=("sample_collide", "aggregation"),
            probe_interval=5,
            sc_l=20,
            agg_restart_interval=20,
            max_qps=max_qps,
        )
    )


def bench_staleness(service: EstimationService, rounds: int) -> dict:
    """Advance ``rounds`` rounds of steady churn; sample staleness each round."""
    staleness = {name: [] for name in service.config.estimators}
    churn = [{"joins": CHURN_PER_ROUND}, {"leaves": CHURN_PER_ROUND}]
    for _ in range(rounds):
        service.ingest(churn)
        service.tick()
        for name, entry in service.read_estimates().items():
            if entry["staleness"] is not None:
                staleness[name].append(entry["staleness"])
    out = {}
    for name, values in staleness.items():
        out[name] = {
            "samples": len(values),
            "mean_rounds": round(statistics.mean(values), 2) if values else None,
            "max_rounds": max(values) if values else None,
        }
    return out


def bench_throughput(service: EstimationService, seconds: float) -> dict:
    """Estimates/second, in-process and over HTTP, under a live ticker.

    The ticker thread keeps ingesting churn and advancing rounds while
    the measurement loops hammer the read path — the sustained-load shape
    the service is built for (reads never block on scenario advancement
    beyond the internal lock).
    """
    stop = threading.Event()

    def ticker() -> None:
        churn = [{"joins": CHURN_PER_ROUND}, {"leaves": CHURN_PER_ROUND}]
        while not stop.is_set():
            service.ingest(churn)
            service.tick()
            stop.wait(0.01)

    thread = threading.Thread(target=ticker, daemon=True)
    thread.start()
    try:
        # In-process: the service core without any transport.
        served = 0
        t0 = time.perf_counter()
        while time.perf_counter() - t0 < seconds:
            ok, _ = service.serve_estimate()
            served += 1 if ok else 0
        inproc = served / (time.perf_counter() - t0)

        # Over HTTP: one client, sequential round-trips on loopback.
        with ServiceServer(service) as server:
            client = ServiceClient(server.address)
            served = 0
            t0 = time.perf_counter()
            while time.perf_counter() - t0 < seconds:
                client.estimate()
                served += 1
            http = served / (time.perf_counter() - t0)
    finally:
        stop.set()
        thread.join(timeout=5)
    return {
        "inprocess_estimates_per_second": round(inproc, 1),
        "http_estimates_per_second": round(http, 1),
        "rounds_advanced": int(service.round),
    }


def bench_throttle(nodes: int, max_qps: float, seconds: float) -> dict:
    """Measured admitted rate under a token-bucket limit (expect ≈ max_qps)."""
    service = build_service(nodes, max_qps=max_qps)
    admitted = 0
    attempts = 0
    t0 = time.perf_counter()
    while time.perf_counter() - t0 < seconds:
        ok, _ = service.serve_estimate()
        admitted += 1 if ok else 0
        attempts += 1
    elapsed = time.perf_counter() - t0
    return {
        "configured_qps": max_qps,
        "attempts": attempts,
        "admitted": admitted,
        "admitted_per_second": round(admitted / elapsed, 1),
    }


def bench_checkpoint(service: EstimationService) -> dict:
    """Cost of one checkpoint write at the benchmark overlay size."""
    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "svc.json"
        t0 = time.perf_counter()
        service.checkpoint(str(path))
        seconds = time.perf_counter() - t0
        size = path.stat().st_size
        t0 = time.perf_counter()
        EstimationService.from_checkpoint(str(path))
        restore_seconds = time.perf_counter() - t0
    return {
        "bytes": size,
        "write_seconds": round(seconds, 4),
        "restore_seconds": round(restore_seconds, 4),
    }


def main(argv=None) -> int:
    """Run every section and write the JSON report."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=2_000)
    parser.add_argument("--rounds", type=int, default=120)
    parser.add_argument("--seconds", type=float, default=3.0)
    parser.add_argument("--max-qps", type=float, default=200.0)
    parser.add_argument(
        "--out", type=pathlib.Path, default=REPO_ROOT / "BENCH_SERVICE.json"
    )
    args = parser.parse_args(argv)

    service = build_service(args.nodes)
    print(
        f"staleness: {args.rounds} rounds of ±{CHURN_PER_ROUND}/round churn "
        f"on {args.nodes} nodes ...",
        flush=True,
    )
    staleness = bench_staleness(service, args.rounds)
    print(f"  {staleness}", flush=True)

    print(f"throughput: {args.seconds:.1f}s per transport under a live ticker ...", flush=True)
    throughput = bench_throughput(service, args.seconds)
    print(f"  {throughput}", flush=True)

    print(f"throttle: max_qps={args.max_qps} for {args.seconds:.1f}s ...", flush=True)
    throttle = bench_throttle(args.nodes, args.max_qps, args.seconds)
    print(f"  {throttle}", flush=True)

    checkpoint = bench_checkpoint(service)
    print(f"checkpoint: {checkpoint}", flush=True)

    report = {
        "generated_by": "scripts/bench_service.py",
        "nodes": args.nodes,
        "churn_per_round": CHURN_PER_ROUND,
        "staleness": staleness,
        "throughput": throughput,
        "throttle": throttle,
        "checkpoint": checkpoint,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
