#!/usr/bin/env python3
"""A/B benchmark of the array-kernel backend vs the dict reference.

Produces ``BENCH_KERNELS.json`` (committed at the repo root), the evidence
behind the backend's performance claim (``docs/KERNELS.md``):

* **fig11 A/B** — the paper-scale Fig 11 trial batch (Sample&Collide
  oneShot over a −50% shrinking overlay, 3 estimation streams) run once
  per backend, reporting per-phase profile totals.  The gate: the array
  backend's total ``estimation`` phase (which *includes* the dict→CSR
  conversion, charged where it happens) must be ≥ 3× faster than the
  reference.
* **n=1M scaling point** — one overlay at the paper's "1M" size, timing
  conversion and per-estimate cost on both backends.
* **bulk accessor micro-bench** — ``OverlayGraph.degrees()`` /
  ``neighbour_arrays()`` against the per-node loops they replace.

Usage::

    PYTHONPATH=src python scripts/bench_kernels.py [--scale paper]
        [--out BENCH_KERNELS.json] [--skip-1m] [--min-speedup 3.0]

Exits non-zero when the speedup gate fails, so the script doubles as a
regression check.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.churn.models import shrinking_trace  # noqa: E402
from repro.core.sample_collide import SampleCollideEstimator  # noqa: E402
from repro.experiments.config import ExperimentConfig, resolve_scale  # noqa: E402
from repro.experiments.runner import overlay_spec  # noqa: E402
from repro.overlay.builders import heterogeneous_random  # noqa: E402
from repro.runtime import (  # noqa: E402
    EstimatorSpec,
    RuntimeOptions,
    TrialSpec,
    run_trials,
    trace_to_payload,
)
from repro.runtime.provenance import phase_metric_values  # noqa: E402
from repro.sim.rng import RngHub  # noqa: E402

STREAMS = 3  # fig11 plots Estimation #1..#3


def fig11_specs(cfg: ExperimentConfig) -> list:
    """The Fig 11 trial batch, constructed exactly like the figure does."""
    hub = RngHub(cfg.seed).child("fig11")
    n = cfg.scale.n_100k
    count = cfg.scale.dynamic_estimations
    trace = shrinking_trace(n, 0.5, start=1.0, end=float(count), steps=count - 1)
    params = {
        "trace": trace_to_payload(trace),
        "time_per_estimation": 1.0,
        "max_degree": int(cfg.max_degree),
    }
    estimator = EstimatorSpec.sample_collide(l=cfg.sc_l, timer=cfg.sc_timer)
    return [
        TrialSpec(
            "multi_probe",
            hub.seed,
            i,
            overlay=overlay_spec(cfg, n),
            estimator=estimator,
            params=params,
            stream=k,
        )
        for i in range(1, count + 1)
        for k in range(STREAMS)
    ]


def run_backend(specs: list, backend: str, workers: int) -> dict:
    """Run one backend's batch; report wall clock and phase totals."""
    runtime = RuntimeOptions(workers=workers, graph_backend=backend)
    started = time.perf_counter()
    results = run_trials(specs, runtime=runtime)
    wall = time.perf_counter() - started
    phases = phase_metric_values(results)
    values = [r.value for r in results if r.ok]
    return {
        "trials": len(results),
        "wall_seconds": round(wall, 3),
        "estimation_seconds": round(sum(phases.get("phase_estimation", [])), 3),
        "kernel_seconds": round(sum(phases.get("phase_kernel", [])), 3),
        "churn_seconds": round(sum(phases.get("phase_churn", [])), 3),
        "boot_seconds": round(sum(phases.get("phase_boot", [])), 3),
        "mean_estimate": round(float(np.mean(values)), 1) if values else None,
    }


def bench_1m(n: int, estimates: int = 3) -> dict:
    """One big-overlay scaling point: conversion + per-estimate cost."""
    t0 = time.perf_counter()
    graph = heterogeneous_random(n, rng=42)
    build = time.perf_counter() - t0

    t0 = time.perf_counter()
    graph.to_array()
    to_array = time.perf_counter() - t0

    out = {
        "n": n,
        "build_seconds": round(build, 2),
        "to_array_seconds": round(to_array, 3),
        "estimates_per_backend": estimates,
    }
    for backend in ("dict", "array"):
        t0 = time.perf_counter()
        values = []
        for seed in range(estimates):
            est = SampleCollideEstimator(
                graph, l=200, timer=10.0,
                rng=np.random.default_rng(seed), backend=backend,
            )
            values.append(est.estimate().value)
        out[f"{backend}_seconds_per_estimate"] = round(
            (time.perf_counter() - t0) / estimates, 3
        )
        out[f"{backend}_mean_estimate"] = round(float(np.mean(values)), 1)
    return out


def bench_accessors(n: int = 100_000) -> dict:
    """Micro-bench of the bulk accessors vs the per-node loops."""
    graph = heterogeneous_random(n, rng=42)

    def timeit(fn, repeats=5):
        best = min(
            (lambda t0: (fn(), time.perf_counter() - t0)[1])(time.perf_counter())
            for _ in range(repeats)
        )
        return round(best * 1000, 2)

    return {
        "n": n,
        "degrees_bulk_ms": timeit(graph.degrees),
        "degrees_loop_ms": timeit(lambda: [graph.degree(u) for u in graph]),
        "neighbour_arrays_ms": timeit(graph.neighbour_arrays),
        "neighbour_loop_ms": timeit(
            lambda: [list(graph.neighbors(u)) for u in graph]
        ),
    }


def main(argv=None) -> int:
    """Run the A/B matrix and write the JSON report."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="paper", help="scale preset (default: paper)")
    parser.add_argument(
        "--out", type=pathlib.Path, default=REPO_ROOT / "BENCH_KERNELS.json"
    )
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--skip-1m", action="store_true")
    parser.add_argument("--min-speedup", type=float, default=3.0)
    args = parser.parse_args(argv)

    scale = resolve_scale(args.scale)
    cfg = ExperimentConfig(scale=scale)
    specs = fig11_specs(cfg)
    print(f"fig11 @ {scale.name}: {len(specs)} trials per backend", flush=True)

    ab = {}
    for backend in ("dict", "array"):
        ab[backend] = run_backend(specs, backend, args.workers)
        print(f"  {backend}: {ab[backend]}", flush=True)

    speedup = ab["dict"]["estimation_seconds"] / max(
        ab["array"]["estimation_seconds"], 1e-9
    )
    gate_passed = speedup >= args.min_speedup
    report = {
        "generated_by": "scripts/bench_kernels.py",
        "scale": scale.name,
        "workers": args.workers,
        "fig11_ab": {
            **ab,
            "estimation_speedup": round(speedup, 2),
            "gate_min_speedup": args.min_speedup,
            "gate_passed": gate_passed,
        },
        "bulk_accessors": bench_accessors(min(scale.n_100k, 100_000)),
    }
    if not args.skip_1m:
        print(f"1M scaling point (n={scale.n_1m}) ...", flush=True)
        report["scaling_1m"] = bench_1m(scale.n_1m)

    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out} (estimation speedup {speedup:.2f}x)")
    if not gate_passed:
        print(
            f"FAIL: speedup {speedup:.2f}x below gate {args.min_speedup}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
