"""Figure 13: HopsSampling last10runs on a +50% growing overlay.

Paper shape: follows the growth, staying slightly under the real size.
"""

import numpy as np

from _common import run_experiment
from repro.experiments.dynamic import fig13_hops_growing


def test_fig13(benchmark):
    fig = run_experiment(benchmark, fig13_hops_growing)
    real = fig.curve("Real network size").y
    est = fig.curve("Estimation #1").y
    assert np.nanmean(est[-8:]) > np.nanmean(est[:8])  # rises with N
    ratio = np.nanmean(est[10:] / real[10:])
    assert 0.6 < ratio < 1.05  # under-estimation persists under churn
