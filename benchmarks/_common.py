"""Shared helpers for the benchmark harness.

Every benchmark regenerates one figure/table of the paper at the ``small``
scale preset (override with ``REPRO_SCALE``) and prints the reproduction
next to the paper's expectation, so ``pytest benchmarks/ --benchmark-only``
doubles as the experiment regeneration run.  Timings measure the full
experiment pipeline (overlay construction + protocol + accounting).

Set ``REPRO_CACHE_DIR`` to point the runtime's content-addressed results
store at a directory: reruns of unchanged figures then skip recomputation
entirely (the timing reflects the cache hit — useful when iterating on one
benchmark while the rest of the suite stays warm).  ``REPRO_WORKERS``
shards each figure's trials over worker processes; results are
bit-identical either way.  The ablation tables participate too (each grid
point is one cached batch); inspect or prune what the runs wrote with
``repro-experiment cache ls|stats|gc``.

Artifacts written through the cache carry the producing git revision in
their headers, so benchmark stores feed ``repro-experiment trends``
directly (see docs/TRENDS.md).  Additionally, set ``REPRO_BENCH_TRENDS``
to a file path to append one summary entry per executed benchmark —
experiment name, scale, seed, revision and wall-clock — building the
perf-trajectory file the CI bench-trends job uploads.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import Callable

from repro.analysis.ascii_chart import render_figure, render_table
from repro.analysis.curves import FigureResult, TableResult
from repro.experiments.config import resolve_scale
from repro.runtime import RuntimeOptions, detect_git_revision, supports_runtime

#: Benchmarks default to the small preset unless the user overrides.
SCALE = os.environ.get("REPRO_SCALE", "small")
#: Seed fixed so benchmark numbers are comparable run to run.
SEED = 20060619
#: Optional results store + worker pool, wired from the environment.
CACHE_DIR = os.environ.get("REPRO_CACHE_DIR") or None
WORKERS = int(os.environ.get("REPRO_WORKERS", "1"))
#: Optional per-run trend summary file (e.g. BENCH_trends.json).
BENCH_TRENDS = os.environ.get("REPRO_BENCH_TRENDS") or None
#: Graph backend for kernel-capable estimators (docs/KERNELS.md).  "array"
#: runs the batched numpy kernels; results are distributionally — not
#: bitwise — equivalent and cache under distinct content addresses.
GRAPH_BACKEND = os.environ.get("REPRO_GRAPH_BACKEND", "dict")


def _experiment_kwargs(fn: Callable) -> dict:
    kwargs = {"scale": SCALE, "seed": SEED}
    runtime_needed = CACHE_DIR or WORKERS > 1 or GRAPH_BACKEND != "dict"
    if runtime_needed and supports_runtime(fn):
        # the tag labels store artifacts for `repro-experiment cache ls`
        kwargs["runtime"] = RuntimeOptions.create(
            workers=WORKERS,
            cache_dir=CACHE_DIR,
            tag=fn.__name__,
            graph_backend=GRAPH_BACKEND,
        )
    return kwargs


def _append_bench_trend(name: str, elapsed: float) -> None:
    """Append one run summary to the ``$REPRO_BENCH_TRENDS`` file.

    The file is a single JSON document (``{"bench_trends_schema": 1,
    "runs": [...]}``) that accumulates across benchmarks and across CI
    runs — the raw perf trajectory behind ``trends``' elapsed_seconds
    metric.  Best-effort: a broken or read-only file never fails a
    benchmark.
    """
    if not BENCH_TRENDS:
        return
    path = pathlib.Path(BENCH_TRENDS)
    try:
        doc = json.loads(path.read_text())
        if not isinstance(doc, dict) or not isinstance(doc.get("runs"), list):
            raise ValueError
    except (OSError, ValueError):
        doc = {"bench_trends_schema": 1, "runs": []}
    doc["runs"].append(
        {
            "experiment": name,
            "scale": SCALE,
            "seed": SEED,
            "git_revision": detect_git_revision(),
            "elapsed_seconds": elapsed,
            "timestamp": time.time(),
        }
    )
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    except OSError:
        pass


def run_experiment(benchmark, fn: Callable, render: bool = True):
    """Execute ``fn(scale=SCALE, seed=SEED)`` once under the benchmark timer
    and return its result for shape assertions."""
    kwargs = _experiment_kwargs(fn)
    elapsed: dict = {}

    def once():
        started = time.perf_counter()
        out = fn(**kwargs)
        elapsed["seconds"] = time.perf_counter() - started
        return out

    result = benchmark.pedantic(once, rounds=1, iterations=1, warmup_rounds=0)
    _append_bench_trend(fn.__name__, elapsed.get("seconds", 0.0))
    if render:
        if isinstance(result, FigureResult):
            print()
            print(render_figure(result))
        elif isinstance(result, TableResult):
            print()
            print(render_table(result))
    return result


def scale_n_100k() -> int:
    """The node count standing in for the paper's 100k runs at this scale."""
    return resolve_scale(SCALE).n_100k
