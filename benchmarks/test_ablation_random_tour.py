"""Ablation (§II): Random Tour vs Sample&Collide overhead.

Paper: "the overhead of the Sample&Collide algorithm is much lower than the
one of Random Tour" — asymptotically Θ(sqrt(l·N)·T·d̄) vs Θ(N) per
estimate, so the gap favours S&C at paper scale (at benchmark scale the
constant factors still favour Random Tour's single walk; what must hold is
the accuracy-per-message story: S&C achieves far lower error at comparable
per-message efficiency).

Runs through `repro.runtime`: each grid point is a cached, picklable
trial batch, so `REPRO_WORKERS` shards the repetitions across worker
processes and `REPRO_CACHE_DIR` serves warm reruns from the
content-addressed store — output bit-identical either way.
"""

from _common import run_experiment, scale_n_100k
from repro.experiments.ablations import random_tour_gap


def test_ablation_random_tour(benchmark):
    table = run_experiment(benchmark, random_tour_gap)
    rows = {r["algorithm"]: r for r in table.rows}
    rt = rows["Random Tour"]
    sc = rows["Sample&Collide (l=200)"]
    # Random Tour's single-tour estimate is wildly noisy; S&C is tight.
    assert sc["mean_abs_error_pct"] < 15
    assert rt["mean_abs_error_pct"] > 3 * sc["mean_abs_error_pct"]
    # Cost scaling: RT ≈ 2m/d̄ ≈ N per tour — Θ(N) like the paper says.
    n = scale_n_100k()
    assert 0.3 * n < rt["mean_messages"] < 3 * n
