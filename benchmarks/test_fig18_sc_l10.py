"""Figure 18: Sample&Collide with l=10 — the cheap, noisy configuration.

Paper shape: one-shot relative std ≈ 1/sqrt(10) ≈ 32%, at roughly 1/5 of
the l=200 overhead (§V: "only 100,000 messages" vs 480,000 at N=100k).
"""

from _common import run_experiment
from repro.experiments.static import fig18_sample_collide_l10


def test_fig18(benchmark):
    fig = run_experiment(benchmark, fig18_sample_collide_l10)
    one = fig.curve("One Shot").y
    assert abs(one.mean() - 100) < 25  # unbiased but noisy
    assert 12 < one.std() < 60  # ~32% relative std band
