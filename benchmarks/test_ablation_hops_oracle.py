"""Ablation (§V): HopsSampling bias disappears with oracle distances.

Paper: "we verified our intuition by giving the accurate distance from the
initiator to all nodes in the overlay, and the resulting size estimation
was correct" — the under-estimation is entirely a spread-phase artifact.

Runs through `repro.runtime`: each grid point is a cached, picklable
trial batch, so `REPRO_WORKERS` shards the repetitions across worker
processes and `REPRO_CACHE_DIR` serves warm reruns from the
content-addressed store — output bit-identical either way.
"""

from _common import run_experiment
from repro.experiments.ablations import hops_oracle_bias


def test_ablation_hops_oracle(benchmark):
    table = run_experiment(benchmark, hops_oracle_bias)
    rows = {r["mode"]: r for r in table.rows}
    gossip = rows["gossip distances"]["mean_quality_pct"]
    oracle = rows["oracle distances"]["mean_quality_pct"]
    assert gossip < 97  # biased low with real spreads
    assert abs(oracle - 100) < 5  # correct with exact distances
    assert abs(oracle - 100) < abs(gossip - 100)
