"""Ablation (§V): HopsSampling bias disappears with oracle distances.

Paper: "we verified our intuition by giving the accurate distance from the
initiator to all nodes in the overlay, and the resulting size estimation
was correct" — the under-estimation is entirely a spread-phase artifact.
"""

from _common import run_experiment
from repro.experiments.ablations import hops_oracle_bias


def test_ablation_hops_oracle(benchmark):
    table = run_experiment(benchmark, hops_oracle_bias)
    rows = {r["mode"]: r for r in table.rows}
    gossip = rows["gossip distances"]["mean_quality_pct"]
    oracle = rows["oracle distances"]["mean_quality_pct"]
    assert gossip < 97  # biased low with real spreads
    assert abs(oracle - 100) < 5  # correct with exact distances
    assert abs(oracle - 100) < abs(gossip - 100)
