"""Table I: per-estimation overhead of each algorithm.

Paper (n=100,000): S&C l=200 oneShot 0.5M / Hops last10runs 2.5M /
S&C last10runs 5M / Aggregation-50-rounds 10M messages, with accuracies
±10% / −20% / ±4% / −1%.  At other scales the measured counts must match
the closed-form models (sqrt(2lN)·(T·d̄+1), Θ(N) spread, 2·N·rounds) and
preserve the cost ordering.
"""

from _common import run_experiment
from repro.experiments.overhead import analytic_overhead_models, table1_overhead


def test_table1(benchmark):
    table = run_experiment(benchmark, table1_overhead)
    rows = {(r["algorithm"], r["parameters"]): r for r in table.rows}
    sc_one = rows[("Sample&Collide (l=200)", "oneShot")]
    agg = next(r for (a, _), r in rows.items() if a == "Aggregation")
    hops_ten = rows[("HopsSampling", "last10runs")]

    # Measured costs track the analytic models at this benchmark's scale.
    for row in table.rows:
        assert abs(row["overhead_messages"] - row["overhead_model"]) <= (
            0.35 * row["overhead_model"]
        ), row
    # Scale-stable parts of the paper's cost ordering (S&C grows as
    # sqrt(N), the gossip algorithms as N, so S&C-vs-gossip orderings are
    # asserted at the paper's N via the validated models below).
    assert sc_one["overhead_messages"] < hops_ten["overhead_messages"]
    assert hops_ten["overhead_messages"] < agg["overhead_messages"]
    # At the paper's N=100,000 the models reproduce Table I itself:
    # 0.5M / 2.5M / 5M / 10M with the full ordering.
    m = analytic_overhead_models(100_000, l=200, timer=10.0, avg_degree=7.2, rounds=50)
    assert 0.35e6 < m["sample_collide_oneshot"] < 0.65e6      # paper: 0.5M
    assert 2.0e6 < m["hops_sampling_last10"] < 4.0e6          # paper: 2.5M
    assert 4.0e6 < m["sample_collide_last10"] < 6.5e6         # paper: 5M
    assert m["aggregation"] == 10.0e6                         # paper: 10M
    assert (
        m["sample_collide_oneshot"]
        < m["hops_sampling_last10"]
        < m["sample_collide_last10"]
        < m["aggregation"]
    )
    # Accuracy story: Aggregation ~exact; S&C oneShot within its band;
    # Hops biased low (signed accuracy at/below the true size).
    assert abs(agg["accuracy_pct"]) < 2
    assert sc_one["accuracy_pct"] < 15
    assert hops_ten["accuracy_pct"] < 5
