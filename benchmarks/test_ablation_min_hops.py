"""Ablation (§V): minHopsReporting sweep.

Paper: "using a lower minHopsReporting parameter does not significantly
reduce the overhead, while degrading accuracy".

Runs through `repro.runtime`: each grid point is a cached, picklable
trial batch, so `REPRO_WORKERS` shards the repetitions across worker
processes and `REPRO_CACHE_DIR` serves warm reruns from the
content-addressed store — output bit-identical either way.
"""

from _common import run_experiment
from repro.experiments.ablations import hops_min_reporting_sweep


def test_ablation_min_hops(benchmark):
    table = run_experiment(benchmark, hops_min_reporting_sweep)
    rows = {r["min_hops_reporting"]: r for r in table.rows}
    msgs = [rows[mh]["mean_messages"] for mh in (1, 3, 5, 7)]
    # Overhead barely moves across the sweep (spread dominates).
    assert max(msgs) / min(msgs) < 1.6
    # Low minHops => heavier extrapolation weights => higher variance.
    assert rows[1]["std_quality_pct"] > rows[7]["std_quality_pct"]
