"""Figure 15: Aggregation monitor under catastrophic failures.

Paper schedule (rescaled): −25% at rounds 100 and 500, +25% of the initial
size at round 700.  Paper shape: the staircase estimate lags each cliff by
one restart epoch (the conservative effect) but recovers after restarts.
"""

import numpy as np

from _common import run_experiment
from repro.experiments.dynamic import fig15_agg_failures


def test_fig15(benchmark):
    fig = run_experiment(benchmark, fig15_agg_failures)
    real = fig.curve("Real size").y
    est = fig.curve("Estimation #1").y
    n0 = fig.params["n0"]
    # schedule applied: -25%, -25%, +n0/4
    expected_final = round(round(n0 * 0.75) * 0.75) + n0 // 4
    assert abs(real[-1] - expected_final) <= 2
    # Steady state at the end: cumulative departures were ≈44% — past the
    # paper's ≈30% threshold — so the degraded, unrepaired overlay keeps
    # epochs from fully converging and the staircase settles somewhat BELOW
    # the real size (the same mechanism as Fig 17), without collapsing.
    tail_ratio = np.nanmean(est[-20:]) / real[-1]
    assert 0.55 < tail_ratio < 1.1
