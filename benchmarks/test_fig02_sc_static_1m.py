"""Figure 2: Sample&Collide, l=200, static '1M' overlay (18 estimations).

Paper shape: identical accuracy bands to Fig 1 — S&C's error depends only
on l, not on N.
"""

import numpy as np

from _common import run_experiment
from repro.experiments.static import fig02_sample_collide_1m


def test_fig02(benchmark):
    fig = run_experiment(benchmark, fig02_sample_collide_1m)
    one = fig.curve("one shot").y
    assert abs(one.mean() - 100) < 10
    assert np.abs(one - 100).max() < 35
