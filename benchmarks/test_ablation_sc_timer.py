"""Ablation (§III-A): Sample&Collide's timer budget vs graph expansion.

Paper: T=10 is "sufficient for an accurate sampling", with the caveat that
"the expansion properties of the graph influence how large T should be
selected in order to have negligible bias".  The sweep quantifies both
halves: T=10 suffices on the paper's (expander) overlay, and no small T
suffices on a poor-expansion ring.

Runs through `repro.runtime`: each grid point is a cached, picklable
trial batch, so `REPRO_WORKERS` shards the repetitions across worker
processes and `REPRO_CACHE_DIR` serves warm reruns from the
content-addressed store — output bit-identical either way.
"""

from _common import run_experiment
from repro.experiments.timer_exp import sc_timer_sweep


def test_ablation_sc_timer(benchmark):
    table = run_experiment(benchmark, sc_timer_sweep)
    by = {(r["topology"].split(" ")[0], r["timer"]): r["mean_quality_pct"]
          for r in table.rows}
    # expander: T=1 biased low (severity grows with n: 31% at n=5,000,
    # ~74% at the benchmark's n=1,250); T=10 unbiased (the paper's setting)
    assert by[("heterogeneous", 1.0)] < by[("heterogeneous", 10.0)] - 10
    # unbiased within the sweep's sampling noise (l=50, 8 reps => the mean
    # of 8 one-shots carries ~5% standard error)
    assert 82 <= by[("heterogeneous", 10.0)] <= 118
    # ring: even T=10 is nowhere near unbiased — expansion matters
    assert by[("ring", 10.0)] < 50
