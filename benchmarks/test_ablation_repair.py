"""Ablation: overlay repair vs the Fig 17 breakdown.

Extension of the paper's §IV-D analysis: the breakdown under −50%
shrinkage is attributed to connectivity loss in the *unrepaired* overlay.
Re-running the scenario under maintenance policies separates the cause
(repair suppresses the breakdown) and prices the cure (CONTROL messages).

Runs through `repro.runtime` as one cached `repair_replay` batch per
policy: the maintenance policy travels as a declarative
`RepairPolicySpec` and is rebuilt against the worker-local graph, so
`REPRO_WORKERS` shards the three scenarios and `REPRO_CACHE_DIR` serves
warm reruns from the content-addressed store — output bit-identical
either way.
"""

from _common import run_experiment
from repro.experiments.repair_exp import repair_comparison


def test_ablation_repair(benchmark):
    table = run_experiment(benchmark, repair_comparison)
    by = {r["policy"]: r for r in table.rows}
    none = by["none (paper)"]
    degree = by["degree repair (min 3 -> 5)"]
    full = by["full repair (ideal)"]
    # the paper's baseline pays nothing and breaks down
    assert none["repair_messages"] == 0
    # maintenance spends messages...
    assert degree["repair_messages"] > 0
    assert full["repair_messages"] >= degree["repair_messages"]
    # ...and suppresses the late-run degradation
    assert full["late_rel_error_pct"] < none["late_rel_error_pct"]
    assert degree["late_rel_error_pct"] <= none["late_rel_error_pct"] + 1.0
