"""Figure 8: the three candidates on one scale-free overlay.

Paper shape: Sample&Collide unbiased (the timer walk corrects degree bias),
Aggregation accurate, HopsSampling's under-estimation amplified relative to
the random overlay.
"""

from _common import run_experiment
from repro.experiments.scale_free_exp import fig08_scale_free_comparison
from repro.experiments.static import fig03_hops_sampling_100k


def test_fig08(benchmark):
    fig = run_experiment(benchmark, fig08_scale_free_comparison)
    sc = fig.curve("Sample&collide").tail_mean(1.0)
    agg = fig.curve("Aggregation").tail_mean(1.0)
    hops = fig.curve("HopsSampling").tail_mean(0.8)
    assert abs(sc - 100) < 10
    assert abs(agg - 100) < 3
    assert hops < 95  # biased low...
    hops_random = fig03_hops_sampling_100k(scale="small", seed=20060619)
    hops_on_random = hops_random.curve("last 10 runs").tail_mean(0.8)
    assert hops < hops_on_random  # ...and worse than on the random overlay
