"""Ablation: identifier-density estimation vs the general-purpose class.

Quantifies §I's scoping argument: id-density methods "provide good
approximation of the system size" (cheaply!) but are "strictly limited to
those identifier-based overlay networks" — a skewed id assignment breaks
them outright, while Sample&Collide is assumption-free.

This study is intentionally serial (no `runtime=` parameter): it is
not a repetition grid, so `REPRO_WORKERS`/`REPRO_CACHE_DIR` have no
effect here — `run_experiment` probes `supports_runtime()` and simply
omits the runtime knobs.
"""

from _common import run_experiment
from repro.experiments.idspace_exp import idspace_comparison


def test_ablation_idspace(benchmark):
    table = run_experiment(benchmark, idspace_comparison)
    by = {(r["estimator"].split(" ")[0], r["assumption"]): r for r in table.rows}
    uniform = next(r for (e, a), r in by.items() if "uniform" in a)
    skewed = next(r for (e, a), r in by.items() if "skewed" in a)
    sc = next(r for (e, a), r in by.items() if e.startswith("Sample"))
    # with honest uniform ids, density estimation matches S&C's accuracy
    # at a tiny fraction of the message cost
    assert uniform["mean_abs_error_pct"] < 3 * max(sc["mean_abs_error_pct"], 2.0)
    assert uniform["mean_messages"] < sc["mean_messages"] / 100
    # and collapses when the uniformity assumption breaks
    assert skewed["mean_abs_error_pct"] > 5 * uniform["mean_abs_error_pct"]
