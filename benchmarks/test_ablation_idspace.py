"""Ablation: identifier-density estimation vs the general-purpose class.

Quantifies §I's scoping argument: id-density methods "provide good
approximation of the system size" (cheaply!) but are "strictly limited to
those identifier-based overlay networks" — a skewed id assignment breaks
them outright, while Sample&Collide is assumption-free.

Runs through `repro.runtime`: each table row is a cached grid cell
(`idspace_probe` for the two interval-density rows — the shared
identifier space is rebuilt worker-side from a declarative `IdSpaceSpec`
— and `fresh_probe` for Sample&Collide), so `REPRO_WORKERS` shards the
repetitions and `REPRO_CACHE_DIR` serves warm reruns from the
content-addressed store — output bit-identical either way.
"""

from _common import run_experiment
from repro.experiments.idspace_exp import idspace_comparison


def test_ablation_idspace(benchmark):
    table = run_experiment(benchmark, idspace_comparison)
    by = {(r["estimator"].split(" ")[0], r["assumption"]): r for r in table.rows}
    uniform = next(r for (e, a), r in by.items() if "uniform" in a)
    skewed = next(r for (e, a), r in by.items() if "skewed" in a)
    sc = next(r for (e, a), r in by.items() if e.startswith("Sample"))
    # with honest uniform ids, density estimation matches S&C's accuracy
    # at a tiny fraction of the message cost
    assert uniform["mean_abs_error_pct"] < 3 * max(sc["mean_abs_error_pct"], 2.0)
    assert uniform["mean_messages"] < sc["mean_messages"] / 100
    # and collapses when the uniformity assumption breaks
    assert skewed["mean_abs_error_pct"] > 5 * uniform["mean_abs_error_pct"]
