"""Figure 3: HopsSampling oneShot + last10runs, static '100k' overlay.

Paper shape: noisier than S&C; last10runs within ≈20%; oneShot peaks can
exceed 50% error; consistent tendency to under-estimate.
"""

import numpy as np

from _common import run_experiment
from repro.experiments.static import fig03_hops_sampling_100k


def test_fig03(benchmark):
    fig = run_experiment(benchmark, fig03_hops_sampling_100k)
    one = fig.curve("one shot").y
    ten = fig.curve("last 10 runs").y
    assert one.mean() < 100  # systematic under-estimation
    assert np.abs(ten[10:] - 100).mean() < 25  # last10runs ~20% band
    assert one.std() > fig.curve("last 10 runs").y[10:].std()  # smoothing helps
