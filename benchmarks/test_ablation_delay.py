"""Ablation: completion-time comparison under a physical latency model.

The paper's §V conjecture / future work, made measurable: "HopsSampling
probably outperforms the other algorithms in terms of delay ... very
likely to be much shorter than the 50 rounds of Aggregation or the wait
for 200 equivalent samples of Sample&Collide".

Runs through `repro.runtime` as one `delay_probe` batch: the latency
model travels as a declarative `LatencySpec` and is rebuilt inside the
worker, so `REPRO_WORKERS` shards the pricing trials and
`REPRO_CACHE_DIR` serves warm reruns from the content-addressed store —
output bit-identical either way.
"""

from _common import run_experiment
from repro.experiments.delay import delay_comparison


def test_ablation_delay(benchmark):
    table = run_experiment(benchmark, delay_comparison)
    by = {r["algorithm"]: r["completion_seconds"] for r in table.rows}
    # the conjecture, quantified:
    assert by["HopsSampling"] < by["Aggregation"]
    assert by["Aggregation"] < by["Sample&Collide (sequential walks)"]
    # ...and the deployment fix the model exposes: parallel walks put S&C
    # back in contention.
    assert by["Sample&Collide (parallel walks)"] < by["Sample&Collide (sequential walks)"]
