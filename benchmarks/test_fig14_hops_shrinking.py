"""Figure 14: HopsSampling last10runs on a −50% shrinking overlay.

Paper shape: tracks the shrink (with window lag); higher variation than
Sample&Collide in the same scenario.
"""

import numpy as np

from _common import run_experiment
from repro.experiments.dynamic import fig14_hops_shrinking


def test_fig14(benchmark):
    fig = run_experiment(benchmark, fig14_hops_shrinking)
    real = fig.curve("Real network size").y
    for k in (1, 2, 3):
        est = fig.curve(f"Estimation #{k}").y
        assert np.nanmean(est[-8:]) < np.nanmean(est[:8])  # falls with N
        rel = np.abs(est[10:] - real[10:]) / real[10:]
        assert np.nanmean(rel) < 0.45
    # (The paper additionally notes more variation than S&C in the same
    # scenario; at paper scale the raw one-shot variance gap dominates, but
    # after last10runs smoothing at benchmark scale the two are within
    # noise of each other, so that cross-algorithm claim is asserted on the
    # unsmoothed estimators in tests/test_integration.py instead.)
