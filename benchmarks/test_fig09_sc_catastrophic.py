"""Figure 9: Sample&Collide oneShot under catastrophic failures (2 × −25%).

Paper shape: the estimation reacts immediately to each drop (no memory in
the oneShot heuristic) and keeps tracking the real size.
"""

import numpy as np

from _common import run_experiment
from repro.experiments.dynamic import fig09_sc_catastrophic


def test_fig09(benchmark):
    fig = run_experiment(benchmark, fig09_sc_catastrophic)
    real = fig.curve("Real network size").y
    # two -25% steps applied: final size ≈ 0.5625 of the initial
    assert 0.54 < real[-1] / real[0] < 0.58
    for k in (1, 2, 3):
        est = fig.curve(f"Estimation #{k}").y
        rel = np.abs(est - real) / real
        assert np.nanmean(rel) < 0.15  # tracks through the cliffs
