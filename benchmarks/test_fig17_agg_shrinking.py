"""Figure 17: Aggregation monitor on a −50% shrinking overlay.

Paper shape — the study's headline failure mode: reasonable tracking until
cumulative departures reach ≈30%, then the unrepaired overlay's degraded
connectivity prevents the epidemic from converging within an epoch and the
estimates fall away from the real size.
"""

import numpy as np

from _common import run_experiment
from repro.experiments.dynamic import fig17_agg_shrinking


def test_fig17(benchmark):
    fig = run_experiment(benchmark, fig17_agg_shrinking)
    real = fig.curve("Real size").y
    est = fig.curve("Estimation #1").y
    n = len(real)
    assert 0.45 < real[-1] / real[0] < 0.55  # -50% applied

    def rel_err(sl):
        return float(np.nanmean(np.abs(est[sl] - real[sl]) / real[sl]))

    early = rel_err(slice(n // 8, n // 4))     # <15% departed: fine
    late = rel_err(slice(3 * n // 4, None))    # >40% departed: degraded
    assert early < 0.15
    assert late > 2 * early  # the breakdown
