"""Ablation (§IV-E / §V): Sample&Collide cost and accuracy vs l.

Paper: cost(l=100) ≈ 3.27 × cost(l=10); cost(l=200) ≈ 1.40 × cost(l=100);
accuracy improves as 1/sqrt(l).

Runs through `repro.runtime`: each grid point is a cached, picklable
trial batch, so `REPRO_WORKERS` shards the repetitions across worker
processes and `REPRO_CACHE_DIR` serves warm reruns from the
content-addressed store — output bit-identical either way.
"""

from _common import run_experiment
from repro.experiments.ablations import sc_cost_vs_l


def test_ablation_sc_l(benchmark):
    table = run_experiment(benchmark, sc_cost_vs_l)
    rows = {r["l"]: r for r in table.rows}
    ratio_100_10 = rows[100]["mean_messages"] / rows[10]["mean_messages"]
    ratio_200_100 = rows[200]["mean_messages"] / rows[100]["mean_messages"]
    assert 2.4 <= ratio_100_10 <= 4.2  # paper: 3.27 (sqrt(10)=3.16)
    assert 1.2 <= ratio_200_100 <= 1.7  # paper: 1.40 (sqrt(2)=1.41)
    assert rows[200]["mean_abs_error_pct"] < rows[10]["mean_abs_error_pct"]
