"""Figure 10: Sample&Collide oneShot on a +50% growing overlay.

Paper shape: the estimation follows the real size closely throughout the
growth.
"""

import numpy as np

from _common import run_experiment
from repro.experiments.dynamic import fig10_sc_growing


def test_fig10(benchmark):
    fig = run_experiment(benchmark, fig10_sc_growing)
    real = fig.curve("Real network size").y
    assert real[-1] / real[0] > 1.4  # +50% applied
    for k in (1, 2, 3):
        est = fig.curve(f"Estimation #{k}").y
        rel = np.abs(est - real) / real
        assert np.nanmean(rel) < 0.12
    # the estimates actually rise with the network (not flat)
    est1 = fig.curve("Estimation #1").y
    assert np.nanmean(est1[-5:]) > 1.25 * np.nanmean(est1[:5])
