"""Figure 6: Aggregation convergence, 3 epochs, '1M' overlay.

Paper shape: same convergence to 100%, needing a few more rounds than the
'100k' overlay (≈50 vs ≈40 in the paper — log N scaling).
"""

import statcheck
from _common import run_experiment
from repro.experiments.static import (
    fig05_aggregation_100k,
    fig06_aggregation_1m,
)


def _rounds_to_one_percent(curve) -> int:
    for i, q in enumerate(curve.y):
        if abs(q - 100.0) < 1.0:
            return i + 1
    return len(curve.y)


def test_fig06(benchmark):
    fig = run_experiment(benchmark, fig06_aggregation_1m)
    for curve in fig.curves:
        assert abs(curve.final() - 100) < 1
    # The larger overlay needs at least as many rounds as the smaller one.
    # Compare the *median* epoch (3 per figure): the min is one lucky
    # initiator away from inverting the log N ordering.
    small_fig = fig05_aggregation_100k(scale="small", seed=20060619)
    big_rounds = sorted(_rounds_to_one_percent(c) for c in fig.curves)[1]
    small_rounds = sorted(_rounds_to_one_percent(c) for c in small_fig.curves)[1]
    statcheck.assert_ge_with_slack(
        big_rounds, small_rounds, slack=2, label="fig6 vs fig5 median epoch"
    )
