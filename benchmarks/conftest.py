"""Benchmark harness configuration: puts this directory on sys.path so the
per-figure modules can import the shared `_common` helpers, and the tests
directory so they can import the shared `statcheck` assertions."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "tests")
)
