"""Benchmark harness configuration: puts this directory on sys.path so the
per-figure modules can import the shared `_common` helpers."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
