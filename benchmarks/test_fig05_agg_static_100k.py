"""Figure 5: Aggregation convergence, 3 epochs, '100k' overlay.

Paper shape: quality rises to ≈100% and stays there; ≈40 rounds suffice at
100k nodes (scaled-down overlays converge a bit sooner, log N scaling).
"""

import numpy as np

from _common import run_experiment
from repro.experiments.static import fig05_aggregation_100k


def test_fig05(benchmark):
    fig = run_experiment(benchmark, fig05_aggregation_100k)
    for curve in fig.curves:
        assert abs(curve.final() - 100) < 1  # converged exactly
        # convergence is monotone-ish: the last quarter is flat at 100
        tail = curve.y[-len(curve.y) // 4 :]
        assert np.abs(tail - 100).max() < 2
