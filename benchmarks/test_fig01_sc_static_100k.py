"""Figure 1: Sample&Collide oneShot + last10runs, l=200, static '100k' overlay.

Paper shape: oneShot stays within a ≈10% window (occasional 10-20% peaks);
last10runs stays within ≈3-4%.
"""

import numpy as np

from _common import run_experiment
from repro.experiments.static import fig01_sample_collide_100k


def test_fig01(benchmark):
    fig = run_experiment(benchmark, fig01_sample_collide_100k)
    one = fig.curve("one shot").y
    ten = fig.curve("last 10 runs").y
    # oneShot: unbiased, ~7% relative std (l=200)
    assert abs(one.mean() - 100) < 8
    assert np.abs(one - 100).max() < 35
    # last10runs: within a few percent once the window fills
    assert np.abs(ten[10:] - 100).max() < 12
    assert np.abs(ten[10:] - 100).mean() < 5
