"""Figure 11: Sample&Collide oneShot on a −50% shrinking overlay.

Paper shape: reliable tracking despite the degradation of overlay
connectivity (removals are never repaired).
"""

import numpy as np

from _common import run_experiment
from repro.experiments.dynamic import fig11_sc_shrinking


def test_fig11(benchmark):
    fig = run_experiment(benchmark, fig11_sc_shrinking)
    real = fig.curve("Real network size").y
    assert 0.45 < real[-1] / real[0] < 0.55  # -50% applied
    for k in (1, 2, 3):
        est = fig.curve(f"Estimation #{k}").y
        rel = np.abs(est - real) / real
        assert np.nanmean(rel) < 0.15
