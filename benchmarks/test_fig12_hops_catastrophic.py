"""Figure 12: HopsSampling last10runs under catastrophic failures.

Paper shape: follows the drops with the averaging window's lag; slightly
under-estimated; more variation around the real size than Sample&Collide.
"""

import numpy as np

from _common import run_experiment
from repro.experiments.dynamic import fig12_hops_catastrophic


def test_fig12(benchmark):
    fig = run_experiment(benchmark, fig12_hops_catastrophic)
    real = fig.curve("Real network size").y
    est = fig.curve("Estimation #1").y
    # settles near (slightly below) the post-failure size at the end
    tail_ratio = np.nanmean(est[-5:]) / real[-1]
    assert 0.6 < tail_ratio < 1.1
    # immediately after the first cliff the smoothed estimate lags ABOVE
    cliff = len(real) // 3
    assert est[cliff + 1] > real[cliff + 1]
