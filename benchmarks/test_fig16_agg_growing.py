"""Figure 16: Aggregation monitor on a +50% growing overlay.

Paper shape: fairly good adaptation — joiners enter the running epoch at
value 0 (mass preserving), so even the within-epoch average tracks 1/N(t).
"""

import numpy as np

from _common import run_experiment
from repro.experiments.dynamic import fig16_agg_growing


def test_fig16(benchmark):
    fig = run_experiment(benchmark, fig16_agg_growing)
    real = fig.curve("Real size").y
    assert real[-1] / real[0] > 1.4  # +50% applied
    for k in (1, 2, 3):
        est = fig.curve(f"Estimation #{k}").y
        tail_ratio = np.nanmean(est[-15:]) / np.mean(real[-15:])
        assert 0.85 < tail_ratio < 1.1
    assert all(f == 0 for f in fig.params["failed_epochs"])  # growth never fails
