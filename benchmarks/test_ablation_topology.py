"""Ablation (§IV-A): heterogeneous vs homogeneous overlays.

Paper: homogeneous node degree "consistently improved all algorithms"; the
heterogeneous overlay is the worst-case setting the evaluation reports.

Runs through `repro.runtime`: each grid point is a cached, picklable
trial batch, so `REPRO_WORKERS` shards the repetitions across worker
processes and `REPRO_CACHE_DIR` serves warm reruns from the
content-addressed store — output bit-identical either way.
"""

import statcheck
from _common import run_experiment
from repro.experiments.ablations import topology_comparison


def test_ablation_topology(benchmark):
    table = run_experiment(benchmark, topology_comparison)
    by = {(r["topology"].split(" ")[0], r["algorithm"]): r["mean_abs_error_pct"]
          for r in table.rows}
    # Sample&Collide: comparable-or-tighter on the homogeneous overlay
    # (uniform sampling needs no degree correction there).  The slack is
    # wide because 8 repetitions of S&C put several points of noise on
    # each mean-abs-error estimate at this scale.
    statcheck.assert_le_with_slack(
        by[("homogeneous", "Sample&Collide (l=200)")],
        by[("heterogeneous", "Sample&Collide (l=200)")],
        slack=4.0,
        label="S&C homogeneous vs heterogeneous",
    )
    # Aggregation is exact on both (mass conservation is topology-free).
    assert by[("heterogeneous", "Aggregation (50 rounds)")] < 1
    assert by[("homogeneous", "Aggregation (50 rounds)")] < 1
