"""Figure 4: HopsSampling, static '1M' overlay (20 estimations).

Paper shape: the algorithm scales — same bands and the same
under-estimation as Fig 3.
"""

from _common import run_experiment
from repro.experiments.static import fig04_hops_sampling_1m


def test_fig04(benchmark):
    fig = run_experiment(benchmark, fig04_hops_sampling_1m)
    one = fig.curve("one shot").y
    assert one.mean() < 105  # no over-estimation regime at larger N either
    assert one.min() > 30  # and not a collapse
