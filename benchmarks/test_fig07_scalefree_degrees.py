"""Figure 7: scale-free overlay degree distribution (log-log power law).

Paper at 100,000 nodes: min degree 3, max ≈1177, average ≈6; straight-line
log-log decay (BA exponent ≈3).
"""

from _common import run_experiment
from repro.experiments.scale_free_exp import fig07_scale_free_degrees


def test_fig07(benchmark):
    fig = run_experiment(benchmark, fig07_scale_free_degrees)
    assert fig.params["min_degree"] >= 3
    assert 5.0 <= fig.params["mean_degree"] <= 7.0
    # hubs: max degree far above the mean, as in the paper's 1177-vs-6
    assert fig.params["max_degree"] > 15 * fig.params["mean_degree"]
    assert 2.0 < fig.params["powerlaw_exponent"] < 4.0
